package bgp

import (
	"testing"

	"painter/internal/topology"
)

// testGraph builds:
//
//	   1 --peer-- 2          tier-1
//	  /  \       /  \
//	10    11   12    13      tier-2 (customers)
//	 |      \  /      |
//	100     101      102     stubs
//
// plus a peer link 10--12.
func testGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph()
	add := func(n topology.ASN, tier topology.Tier) {
		if err := g.AddAS(&topology.AS{ASN: n, Tier: tier}); err != nil {
			t.Fatal(err)
		}
	}
	add(1, topology.TierOne)
	add(2, topology.TierOne)
	for _, n := range []topology.ASN{10, 11, 12, 13} {
		add(n, topology.TierTwo)
	}
	for _, n := range []topology.ASN{100, 101, 102} {
		add(n, topology.TierStub)
	}
	links := []struct {
		a, b topology.ASN
		rel  topology.Relationship
	}{
		{1, 2, topology.RelPeer},
		{1, 10, topology.RelCustomer}, {1, 11, topology.RelCustomer},
		{2, 12, topology.RelCustomer}, {2, 13, topology.RelCustomer},
		{10, 100, topology.RelCustomer},
		{11, 101, topology.RelCustomer}, {12, 101, topology.RelCustomer},
		{13, 102, topology.RelCustomer},
		{10, 12, topology.RelPeer},
	}
	for _, l := range links {
		if err := g.Link(l.a, l.b, l.rel); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestPropagateCustomerInjectionReachesEveryone(t *testing.T) {
	g := testGraph(t)
	// Cloud buys transit from AS 10: injection is customer-class at 10.
	sel, err := Propagate(g, []Injection{{Neighbor: 10, Class: ClassCustomer, Ingress: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.ASNs() {
		r, ok := sel[n]
		if !ok {
			t.Errorf("AS %v has no route; customer injection should reach all", n)
			continue
		}
		if r.Ingress != 1 {
			t.Errorf("AS %v ingress = %d, want 1", n, r.Ingress)
		}
	}
	// Route classes along the way:
	if sel[10].Class != ClassCustomer || sel[10].PathLen != 1 {
		t.Errorf("AS10 route = %+v, want customer/len1", sel[10])
	}
	if sel[1].Class != ClassCustomer {
		t.Errorf("AS1 (provider of 10) class = %v, want customer", sel[1].Class)
	}
	if sel[2].Class != ClassPeer {
		t.Errorf("AS2 (peer of 1) class = %v, want peer", sel[2].Class)
	}
	if sel[12].Class != ClassPeer { // 12 peers with 10
		t.Errorf("AS12 class = %v, want peer (via direct peering with 10)", sel[12].Class)
	}
	if sel[100].Class != ClassProvider {
		t.Errorf("AS100 class = %v, want provider", sel[100].Class)
	}
}

func TestPropagatePeerInjectionStaysInCone(t *testing.T) {
	g := testGraph(t)
	// Cloud peers with AS 11 at some PoP: peer-class at 11; the route is
	// only exported to 11's customers.
	sel, err := Propagate(g, []Injection{{Neighbor: 11, Class: ClassPeer, Ingress: 5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected = %d entries (%v), want 2 (AS 11 and its customer 101)", len(sel), sel)
	}
	if r := sel[11]; r.Class != ClassPeer || r.Ingress != 5 {
		t.Errorf("AS11 route = %+v", r)
	}
	if r := sel[101]; r.Class != ClassProvider || r.PathLen != 2 {
		t.Errorf("AS101 route = %+v, want provider/len2", r)
	}
	if _, ok := sel[1]; ok {
		t.Error("AS1 should not hear a peer-class route from its customer's peer")
	}
}

func TestPropagatePrefersCustomerOverPeerOverProvider(t *testing.T) {
	g := testGraph(t)
	// AS 101 multihomes to 11 and 12. Inject:
	//   - customer-class at 13 (cloud transits via 13) → reaches 101 as
	//     provider-class after traveling 13→2→12→101 or 13→2→1→11→101.
	//   - peer-class at 12 → 101 hears provider-class len 2.
	// 101 should pick the shorter provider route via 12 (ingress 2).
	sel, err := Propagate(g, []Injection{
		{Neighbor: 13, Class: ClassCustomer, Ingress: 1},
		{Neighbor: 12, Class: ClassPeer, Ingress: 2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := sel[101]
	if r.Ingress != 2 || r.PathLen != 2 {
		t.Errorf("AS101 picked %+v, want ingress 2 at len 2", r)
	}
	// AS 12 itself: peer route (class peer, len 1) vs provider route via 2
	// (class provider) → peer wins.
	if r := sel[12]; r.Ingress != 2 || r.Class != ClassPeer {
		t.Errorf("AS12 picked %+v, want peer-class ingress 2", r)
	}
	// AS 2: customer route via 13 only.
	if r := sel[2]; r.Ingress != 1 || r.Class != ClassCustomer {
		t.Errorf("AS2 picked %+v, want customer-class ingress 1", r)
	}
}

func TestPropagateShorterPathWinsWithinClass(t *testing.T) {
	g := testGraph(t)
	// Two customer-class injections: at 10 and at 2. AS 1 hears customer
	// routes from 10 (len 2) and from... 2 is 1's peer so that is peer
	// class. AS 100 (customer of 10) hears provider route via 10 (len 2).
	sel, err := Propagate(g, []Injection{
		{Neighbor: 10, Class: ClassCustomer, Ingress: 1},
		{Neighbor: 2, Class: ClassCustomer, Ingress: 2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := sel[1]; r.Ingress != 1 || r.Class != ClassCustomer || r.PathLen != 2 {
		t.Errorf("AS1 picked %+v, want customer ingress 1 len 2", r)
	}
	if r := sel[100]; r.Ingress != 1 || r.PathLen != 2 {
		t.Errorf("AS100 picked %+v, want ingress 1 len 2", r)
	}
	// AS 13 (customer of 2): provider route via 2 len 2 beats anything
	// longer.
	if r := sel[13]; r.Ingress != 2 || r.PathLen != 2 {
		t.Errorf("AS13 picked %+v, want ingress 2 len 2", r)
	}
}

func TestPropagateTieBreaker(t *testing.T) {
	g := testGraph(t)
	// 101 multihomes to 11 and 12; inject peer-class at both so 101 sees
	// two provider routes of equal length.
	inj := []Injection{
		{Neighbor: 11, Class: ClassPeer, Ingress: 7},
		{Neighbor: 12, Class: ClassPeer, Ingress: 3},
	}
	selDefault, err := Propagate(g, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Default tie-break: lowest ingress ID.
	if r := selDefault[101]; r.Ingress != 3 {
		t.Errorf("default tiebreak picked ingress %d, want 3", r.Ingress)
	}
	// Custom tie-break: highest ingress.
	selHigh, err := Propagate(g, inj, func(_ topology.ASN, cands []Route) int {
		best := 0
		for i, c := range cands {
			if c.Ingress > cands[best].Ingress {
				best = i
			}
		}
		return best
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := selHigh[101]; r.Ingress != 7 {
		t.Errorf("custom tiebreak picked ingress %d, want 7", r.Ingress)
	}
}

func TestPropagateDeterministic(t *testing.T) {
	g, err := topology.Generate(topology.GenConfig{Seed: 5, Tier1: 4, Tier2: 20, Stubs: 200,
		MeanStubProviders: 2.3, Tier2PeerProb: 0.3, EnterpriseFrac: 0.3, ContentFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	inj := []Injection{
		{Neighbor: 1000, Class: ClassCustomer, Ingress: 1},
		{Neighbor: 1001, Class: ClassPeer, Ingress: 2},
		{Neighbor: 1002, Class: ClassPeer, Ingress: 3},
	}
	a, err := Propagate(g, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Propagate(g, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run sizes differ: %d vs %d", len(a), len(b))
	}
	for n, ra := range a {
		if rb := b[n]; ra != rb {
			t.Fatalf("AS %v differs across runs: %+v vs %+v", n, ra, rb)
		}
	}
}

func TestPropagateErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := Propagate(g, []Injection{{Neighbor: 999, Class: ClassPeer, Ingress: 1}}, nil); err == nil {
		t.Error("unknown neighbor should fail")
	}
	if _, err := Propagate(g, []Injection{{Neighbor: 10, Class: ClassPeer, Ingress: -2}}, nil); err == nil {
		t.Error("invalid ingress should fail")
	}
}

func TestPropagateNoValleys(t *testing.T) {
	// Property: in any selected route set, an AS with only a provider-
	// class route must have learned it from a neighbor that itself has a
	// route — and no route may be learned "up" from a peer/provider route.
	// We verify the classes are consistent with Via relationships.
	g, err := topology.Generate(topology.GenConfig{Seed: 9, Tier1: 4, Tier2: 25, Stubs: 300,
		MeanStubProviders: 2.5, Tier2PeerProb: 0.4, EnterpriseFrac: 0.3, ContentFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	inj := []Injection{
		{Neighbor: 1000, Class: ClassPeer, Ingress: 1},
		{Neighbor: 1005, Class: ClassCustomer, Ingress: 2},
		{Neighbor: 1010, Class: ClassPeer, Ingress: 3},
	}
	sel, err := Propagate(g, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	injured := map[topology.ASN]bool{1000: true, 1005: true, 1010: true}
	for n, r := range sel {
		if injured[n] && r.Via == n {
			continue // injection point
		}
		rel := g.Rel(n, r.Via)
		switch r.Class {
		case ClassCustomer:
			if rel != topology.RelCustomer {
				t.Errorf("AS %v claims customer route via %v but rel=%v", n, r.Via, rel)
			}
		case ClassPeer:
			if rel != topology.RelPeer {
				t.Errorf("AS %v claims peer route via %v but rel=%v", n, r.Via, rel)
			}
		case ClassProvider:
			if rel != topology.RelProvider {
				t.Errorf("AS %v claims provider route via %v but rel=%v", n, r.Via, rel)
			}
		}
		// Valley-free: the neighbor we learned from must itself have a
		// route, and if we learned from a peer or provider, that neighbor
		// must have had a customer route or be an injection point.
		vr, ok := sel[r.Via]
		if !ok {
			t.Errorf("AS %v learned from %v which has no route", n, r.Via)
			continue
		}
		if r.Class == ClassPeer && !(vr.Class == ClassCustomer || (injured[r.Via] && vr.Via == r.Via)) {
			t.Errorf("AS %v peer route via %v whose class is %v (valley!)", n, r.Via, vr.Class)
		}
	}
}

func TestReachableIngresses(t *testing.T) {
	g := testGraph(t)
	inj := []Injection{
		{Neighbor: 10, Class: ClassCustomer, Ingress: 1}, // transit: reaches all
		{Neighbor: 11, Class: ClassPeer, Ingress: 2},     // only 11 + cone
		{Neighbor: 13, Class: ClassPeer, Ingress: 3},     // only 13 + cone
	}
	cases := []struct {
		src  topology.ASN
		want []IngressID
	}{
		{100, []IngressID{1}},
		{101, []IngressID{1, 2}},
		{102, []IngressID{1, 3}},
		{11, []IngressID{1, 2}},
		{1, []IngressID{1}},
	}
	for _, c := range cases {
		got := ReachableIngresses(g, c.src, inj)
		if len(got) != len(c.want) {
			t.Errorf("ReachableIngresses(%v) = %v, want %v", c.src, got, c.want)
			continue
		}
		for _, w := range c.want {
			if !got[w] {
				t.Errorf("ReachableIngresses(%v) missing %d", c.src, w)
			}
		}
	}
}

func TestReachableIngressesContainsSelected(t *testing.T) {
	// Property: whatever route Propagate selects for an AS, its ingress
	// must be in the AS's policy-compliant reachable set.
	g, err := topology.Generate(topology.GenConfig{Seed: 13, Tier1: 4, Tier2: 20, Stubs: 250,
		MeanStubProviders: 2.4, Tier2PeerProb: 0.35, EnterpriseFrac: 0.35, ContentFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	inj := []Injection{
		{Neighbor: 1000, Class: ClassCustomer, Ingress: 1},
		{Neighbor: 1003, Class: ClassPeer, Ingress: 2},
		{Neighbor: 1007, Class: ClassPeer, Ingress: 3},
		{Neighbor: 1011, Class: ClassCustomer, Ingress: 4},
	}
	sel, err := Propagate(g, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n, r := range sel {
		reach := ReachableIngresses(g, n, inj)
		if !reach[r.Ingress] {
			t.Errorf("AS %v selected ingress %d not in reachable set %v", n, r.Ingress, reach)
		}
	}
}

func TestRouteBetter(t *testing.T) {
	cust := Route{Class: ClassCustomer, PathLen: 5}
	peerShort := Route{Class: ClassPeer, PathLen: 1}
	provShort := Route{Class: ClassProvider, PathLen: 1}
	if !cust.Better(peerShort) {
		t.Error("customer route must beat shorter peer route")
	}
	if !peerShort.Better(provShort) {
		t.Error("peer beats provider")
	}
	a := Route{Class: ClassPeer, PathLen: 2}
	b := Route{Class: ClassPeer, PathLen: 3}
	if !a.Better(b) || b.Better(a) {
		t.Error("shorter path wins within class")
	}
	if a.Better(a) {
		t.Error("route is not better than itself")
	}
}

func TestPropagatePrependShiftsSelection(t *testing.T) {
	g := testGraph(t)
	// Two customer-class injections at 10 and 13. Without prepending,
	// AS 1 prefers the shorter customer route via 10.
	plain := []Injection{
		{Neighbor: 10, Class: ClassCustomer, Ingress: 1},
		{Neighbor: 13, Class: ClassCustomer, Ingress: 2},
	}
	sel, err := Propagate(g, plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := sel[1]; r.Ingress != 1 {
		t.Fatalf("baseline: AS1 picked ingress %d, want 1", r.Ingress)
	}
	// Prepending 4 hops on the ingress-1 advertisement makes the route
	// via 13 (length 3 at AS 1: 13->2->1... wait, 2 is a peer of 1, so
	// the customer path to AS1 is only via 10) — use AS 100 instead,
	// whose provider routes compare by length: via 10 (len 1+4+1=6
	// prepended) vs via the chain from 13 (13->2 peer->... does not
	// reach 100 as customer route). Check AS 2: customer route via 13
	// len 2 vs peer route via 1. Prepend shifts AS 1's own choice once
	// the direct route is longer than an alternative customer path —
	// none exists here, so instead verify path lengths carry the
	// prepend.
	prepended := []Injection{
		{Neighbor: 10, Class: ClassCustomer, Ingress: 1, Prepend: 4},
		{Neighbor: 13, Class: ClassCustomer, Ingress: 2},
	}
	sel2, err := Propagate(g, prepended, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := sel2[10]; r.PathLen != 5 {
		t.Errorf("AS10 path length = %d, want 5 (1+4 prepend)", r.PathLen)
	}
	// AS 100 (customer of 10) still must use ingress 1 (only compliant
	// path) but sees the longer path.
	if r := sel2[100]; r.Ingress != 1 || r.PathLen != 6 {
		t.Errorf("AS100 = %+v, want ingress 1 at length 6", r)
	}
}

func TestPropagatePrependBreaksTieTowardUnprepended(t *testing.T) {
	g := testGraph(t)
	// AS 101 multihomes to 11 and 12; peer-class injections at both give
	// 101 two provider routes of equal length; prepending one side must
	// deterministically steer 101 to the other.
	inj := []Injection{
		{Neighbor: 11, Class: ClassPeer, Ingress: 7, Prepend: 2},
		{Neighbor: 12, Class: ClassPeer, Ingress: 3},
	}
	sel, err := Propagate(g, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := sel[101]; r.Ingress != 3 {
		t.Errorf("AS101 picked prepended ingress %d, want 3", r.Ingress)
	}
	// And the reverse.
	inj2 := []Injection{
		{Neighbor: 11, Class: ClassPeer, Ingress: 7},
		{Neighbor: 12, Class: ClassPeer, Ingress: 3, Prepend: 2},
	}
	sel2, err := Propagate(g, inj2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := sel2[101]; r.Ingress != 7 {
		t.Errorf("AS101 picked prepended ingress %d, want 7", r.Ingress)
	}
}

func TestPropagatePrependValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := Propagate(g, []Injection{{Neighbor: 10, Class: ClassPeer, Ingress: 1, Prepend: -1}}, nil); err == nil {
		t.Error("negative prepend should fail")
	}
	if _, err := Propagate(g, []Injection{{Neighbor: 10, Class: ClassPeer, Ingress: 1, Prepend: 17}}, nil); err == nil {
		t.Error("prepend > 16 should fail")
	}
}
