package bgp

// Incremental delta propagation: repair a previous propagation Result
// after a small input change instead of re-running the whole-graph
// engine. Most netsim events (one peering down, one preference flip)
// perturb only the catchment cone of the change — usually a tiny
// fraction of the AS graph — so re-deriving just that cone is the big
// win the continuous controller compounds with prefix-level repair.
//
// The full engine settles ASes in a fixed global order: phase-major
// (customer < peer < provider), path-length-minor, realized by three
// sequential bucket-queue sweeps. Crucially, the tied candidate set an
// AS sees at its settle bucket depends only on ASes settled at strictly
// smaller (phase, length) keys — the dependency order is acyclic. The
// delta engine exploits that:
//
//   - Every (class, pathLen, AS) bucket maps to one uint64 key ordered
//     exactly like the full engine's evaluation order (deltaKey).
//   - The change seeds a min-heap frontier: buckets of injections that
//     differ from prev's (per-neighbor multiset diff), plus the settle
//     buckets of ASes whose tie-break preferences flipped.
//   - Popping a key re-derives that AS's tied candidate set AT that
//     bucket from current neighbor state (candidatesAt reconstructs
//     precisely the set the full engine's settleBucket would present,
//     in the same (ingress, via) order), and compares against the
//     previous settle:
//       * unchanged winner — dependents unaffected, no pushes;
//       * changed/withdrawn — the AS's old and new export buckets are
//         pushed so dependents re-evaluate, and a withdrawn AS
//         reschedules itself at the next bucket it could settle in.
//   - ASes never reached by a push keep their previous route verbatim.
//
// Exactness argument (pinned by the differential suite): when key k
// pops, every AS's settled-below-k state is final — changed
// contributors push their old and new export buckets (both > their own
// settle key), so any bucket whose candidate set differs from prev's is
// in the heap before it is reached, and an unchanged candidate set
// at an AS's previous settle bucket implies (inductively) the previous
// selection stands. Because candidatesAt rebuilds the full tied set,
// the TieBreaker sees byte-identical inputs to the full engine's — the
// equivalence holds for arbitrary tie-breakers, not just default ones.

import (
	"fmt"
	"slices"
	"time"

	"painter/internal/topology"
)

// Delta settle status per AS.
const (
	dsFinal     uint8 = iota // previous settle presumed to stand
	dsInvalid                // previous settle revoked; searching for a new bucket
	dsResettled              // settled under the new inputs; final
)

// deltaInf is the bucket key of an unsettled AS: after every real key.
const deltaInf = ^uint64(0)

// deltaKey packs (class, pathLen, denseID) into one key ordered
// phase-major, length-minor, exactly the full engine's settle order:
// class<<62 | pathLen<<31 | id. Path lengths and dense ids both fit 31
// bits (paths are bounded by the AS count plus max prepend).
func deltaKey(class RouteClass, pathLen int, as int32) uint64 {
	return uint64(class)<<62 | uint64(uint32(pathLen))<<31 | uint64(uint32(as))
}

func deltaKeyParts(k uint64) (class RouteClass, pathLen int, as int32) {
	return RouteClass(k >> 62), int(k >> 31 & 0x7fffffff), int32(k & 0x7fffffff)
}

// deltaHeap is a plain binary min-heap of bucket keys. Duplicates are
// tolerated (pops drain them) — cheaper than an indexed heap at the
// frontier sizes delta repair sees.
type deltaHeap []uint64

func (h *deltaHeap) push(k uint64) {
	s := append(*h, k)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

func (h *deltaHeap) pop() uint64 {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && s[r] < s[l] {
			l = r
		}
		if s[i] <= s[l] {
			break
		}
		s[i], s[l] = s[l], s[i]
		i = l
	}
	*h = s
	return top
}

// deltaRun is the mutable state of one PropagateDelta call.
type deltaRun struct {
	idx  *topology.Index
	prev *Result
	tb   TieBreaker

	sel          []Route
	settled      []bool
	settledCount int
	status       []uint8
	heap         deltaHeap
	injAt        map[int32][]Injection // dense id -> current injections there

	scratch     []Route
	touched     []int32
	touchedMark []bool
}

// PropagateDelta computes the routes every AS selects under the given
// injections by repairing prev, a Result produced for the same graph
// with (usually) slightly different inputs. flipped names ASes whose
// TieBreaker preferences may differ from the ones that produced prev;
// everywhere else tb must behave identically to prev's tie-breaker
// (netsim translates its events into exactly this contract — the
// engine cannot depend on netsim, so the event is expressed in BGP
// terms: an injection diff plus flipped tie-breaks).
//
// It returns the repaired Result and the ASes whose selection actually
// changed (gained, lost, or switched routes), ascending. When nothing
// can change — identical injections and no flipped AS holds a route —
// it returns prev itself with a nil changed set and zero allocations.
//
// The output is byte-identical to PropagateResult over the same inputs
// under any tie-breaker; the differential, metamorphic, and fuzz suites
// in delta_test.go pin that equivalence.
func PropagateDelta(prev *Result, g *topology.Graph, injections []Injection, flipped []topology.ASN, tb TieBreaker) (*Result, []topology.ASN, error) {
	if prev == nil {
		return nil, nil, fmt.Errorf("bgp: PropagateDelta requires a previous Result")
	}
	if tb == nil {
		tb = MinIngressTieBreaker
	}
	idx := g.Index()
	if idx != prev.idx {
		return nil, nil, fmt.Errorf("bgp: PropagateDelta base is from a different graph")
	}

	var m *propagateMetrics
	var start time.Time
	if obsEnabled {
		if m = propObs.Load(); m != nil {
			start = time.Now()
		}
	}

	// Fast path: identical injections (order-sensitive — callers pass
	// deterministically ordered lists) and no flip touching a settled
	// AS cannot move any selection.
	sameInj := slices.Equal(injections, prev.inj)
	flipLive := false
	for _, as := range flipped {
		di, ok := idx.ID(as)
		if !ok {
			return nil, nil, fmt.Errorf("bgp: flipped AS %v not in topology", as)
		}
		if prev.settled[di] {
			flipLive = true
		}
	}
	if sameInj && !flipLive {
		if m != nil {
			m.deltaTotal.Inc()
			m.deltaNoops.Inc()
		}
		return prev, nil, nil
	}
	if !sameInj {
		if err := validateInjections(g, injections); err != nil {
			return nil, nil, err
		}
	}

	n := idx.Len()
	d := &deltaRun{
		idx:          idx,
		prev:         prev,
		tb:           tb,
		sel:          slices.Clone(prev.sel),
		settled:      slices.Clone(prev.settled),
		settledCount: prev.settledCount,
		status:       make([]uint8, n),
		touchedMark:  make([]bool, n),
		scratch:      make([]Route, 0, 16),
	}

	// Seed the frontier.
	if !sameInj {
		d.injAt = make(map[int32][]Injection, len(injections))
		for _, inj := range injections {
			di, _ := idx.ID(inj.Neighbor)
			d.injAt[di] = append(d.injAt[di], inj)
		}
		// Per-neighbor injection multiset diff: every injection present
		// in exactly one of (prev, new) seeds its arrival bucket.
		oldS := prev.sortedInjections()
		newS := append([]Injection(nil), injections...)
		sortInjections(newS)
		seed := func(inj Injection) {
			di, _ := idx.ID(inj.Neighbor)
			d.heap.push(deltaKey(inj.Class, 1+inj.Prepend, di))
		}
		i, j := 0, 0
		for i < len(oldS) && j < len(newS) {
			switch c := compareInjections(oldS[i], newS[j]); {
			case c == 0:
				i++
				j++
			case c < 0:
				seed(oldS[i])
				i++
			default:
				seed(newS[j])
				j++
			}
		}
		for ; i < len(oldS); i++ {
			seed(oldS[i])
		}
		for ; j < len(newS); j++ {
			seed(newS[j])
		}
	} else {
		d.injAt = make(map[int32][]Injection, len(prev.inj))
		for _, inj := range prev.inj {
			di, _ := idx.ID(inj.Neighbor)
			d.injAt[di] = append(d.injAt[di], inj)
		}
	}
	for _, as := range flipped {
		di, _ := idx.ID(as)
		if prev.settled[di] {
			r := prev.sel[di]
			d.heap.push(deltaKey(r.Class, r.PathLen, di))
		}
	}
	frontier := len(d.heap)

	// Drain the frontier in global settle order.
	for len(d.heap) > 0 {
		k := d.heap.pop()
		for len(d.heap) > 0 && d.heap[0] == k {
			d.heap.pop()
		}
		class, pathLen, y := deltaKeyParts(k)
		d.step(k, class, pathLen, y)
	}

	// Collect the ASes whose final selection actually differs.
	slices.Sort(d.touched)
	var changed []topology.ASN
	for _, y := range d.touched {
		if d.settled[y] != prev.settled[y] || (d.settled[y] && d.sel[y] != prev.sel[y]) {
			changed = append(changed, idx.ASN(y))
		}
	}

	if m != nil {
		m.deltaTotal.Inc()
		m.deltaSeconds.Observe(time.Since(start).Seconds())
		m.deltaFrontier.Observe(float64(frontier))
		m.deltaChanged.Observe(float64(len(changed)))
	}
	if len(changed) == 0 && sameInj {
		// A flip that did not move any winner: prev stands verbatim.
		return prev, nil, nil
	}
	return &Result{
		idx:          idx,
		sel:          d.sel,
		settled:      d.settled,
		settledCount: d.settledCount,
		inj:          append([]Injection(nil), injections...),
	}, changed, nil
}

// prevKey is the bucket y settled in previously, deltaInf if unsettled.
func (d *deltaRun) prevKey(y int32) uint64 {
	if !d.prev.settled[y] {
		return deltaInf
	}
	r := d.prev.sel[y]
	return deltaKey(r.Class, r.PathLen, y)
}

func (d *deltaRun) markTouched(y int32) {
	if !d.touchedMark[y] {
		d.touchedMark[y] = true
		d.touched = append(d.touched, y)
	}
}

// step re-evaluates AS y at bucket (class, pathLen), key k.
func (d *deltaRun) step(k uint64, class RouteClass, pathLen int, y int32) {
	switch d.status[y] {
	case dsResettled:
		return // already final under the new inputs

	case dsFinal:
		pk := d.prevKey(y)
		if k > pk {
			// y settled earlier than this bucket and nothing below pk
			// invalidated it (that push would have popped first): the
			// previous settle stands; this push is irrelevant.
			return
		}
		cands := d.candidatesAt(y, class, pathLen)
		if k < pk {
			if len(cands) == 0 {
				return // spurious push; pk still pending if it matters
			}
			// y now settles strictly earlier than before.
			r := cands[d.tb(d.idx.ASN(y), cands)]
			if pk != deltaInf {
				// Revoke the old, later settle: its dependents must
				// re-evaluate the buckets it used to export into.
				d.pushExports(y, d.prev.sel[y])
			} else {
				d.settledCount++
			}
			d.sel[y] = r
			d.settled[y] = true
			d.status[y] = dsResettled
			d.markTouched(y)
			d.pushExports(y, r)
			return
		}
		// k == pk: y's previous settle bucket is up for re-evaluation.
		if len(cands) == 0 {
			// Withdrawn: no candidate remains here. Revoke and search
			// later buckets.
			d.status[y] = dsInvalid
			d.settled[y] = false
			d.settledCount--
			d.markTouched(y)
			d.pushExports(y, d.prev.sel[y])
			d.reschedule(y, k)
			return
		}
		r := cands[d.tb(d.idx.ASN(y), cands)]
		d.status[y] = dsResettled
		if r == d.prev.sel[y] {
			return // identical winner: dependents see no change
		}
		d.sel[y] = r
		d.markTouched(y)
		// Same bucket means same (class, length): the old and new
		// export buckets coincide, so one push covers both.
		d.pushExports(y, r)

	case dsInvalid:
		cands := d.candidatesAt(y, class, pathLen)
		if len(cands) == 0 {
			d.reschedule(y, k)
			return
		}
		r := cands[d.tb(d.idx.ASN(y), cands)]
		d.sel[y] = r
		d.settled[y] = true
		d.settledCount++
		d.status[y] = dsResettled
		d.pushExports(y, r)
	}
}

// candidatesAt reconstructs the tied candidate set the full engine's
// settleBucket would present to the TieBreaker for y at (class,
// pathLen): contributions from neighbors settled one bucket earlier in
// the phase's export direction, plus matching direct injections, in
// ascending (ingress, via) order. Contributor state below the current
// key is final (the invariant the pop order maintains), so reading the
// working arrays is exact.
func (d *deltaRun) candidatesAt(y int32, class RouteClass, pathLen int) []Route {
	cands := d.scratch[:0]
	add := func(ing IngressID, via int32) {
		cands = append(cands, Route{Ingress: ing, PathLen: pathLen, Class: class, Via: d.idx.ASN(via)})
	}
	switch class {
	case ClassCustomer:
		// Phase 1: customer routes climb provider links.
		for _, c := range d.idx.Customers(y) {
			if d.settled[c] && d.sel[c].Class == ClassCustomer && d.sel[c].PathLen == pathLen-1 {
				add(d.sel[c].Ingress, c)
			}
		}
	case ClassPeer:
		// Phase 2: one hop across peer links from customer-settled ASes.
		for _, p := range d.idx.Peers(y) {
			if d.settled[p] && d.sel[p].Class == ClassCustomer && d.sel[p].PathLen == pathLen-1 {
				add(d.sel[p].Ingress, p)
			}
		}
	case ClassProvider:
		// Phase 3: any settled provider exports down to customers.
		for _, p := range d.idx.Providers(y) {
			if d.settled[p] && d.sel[p].PathLen == pathLen-1 {
				add(d.sel[p].Ingress, p)
			}
		}
	}
	for _, inj := range d.injAt[y] {
		if inj.Class == class && 1+inj.Prepend == pathLen {
			add(inj.Ingress, y)
		}
	}
	// Ascending (ingress, via): dense ids ascend with ASN, so this is
	// the order sortCands leaves each AS's group in.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && (cands[j].Ingress < cands[j-1].Ingress ||
			(cands[j].Ingress == cands[j-1].Ingress && cands[j].Via < cands[j-1].Via)); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	d.scratch = cands
	return cands
}

// pushExports pushes the buckets route r at y exports into, honoring
// valley-free rules: customer-learned routes go up to providers and
// across to peers; every settled route goes down to customers.
func (d *deltaRun) pushExports(y int32, r Route) {
	l := r.PathLen + 1
	if r.Class == ClassCustomer {
		for _, p := range d.idx.Providers(y) {
			d.pushTo(p, deltaKey(ClassCustomer, l, p))
		}
		for _, p := range d.idx.Peers(y) {
			d.pushTo(p, deltaKey(ClassPeer, l, p))
		}
	}
	for _, c := range d.idx.Customers(y) {
		d.pushTo(c, deltaKey(ClassProvider, l, c))
	}
}

// pushTo enqueues bucket k for AS t unless it provably cannot matter:
// t already resettled (its final bucket is below any future push), or
// t's unrevoked previous settle is strictly below k (equal must push —
// the tie set at the settle bucket may have changed).
func (d *deltaRun) pushTo(t int32, k uint64) {
	switch d.status[t] {
	case dsResettled:
		return
	case dsFinal:
		if k > d.prevKey(t) {
			return
		}
	}
	d.heap.push(k)
}

// reschedule finds the earliest bucket after `after` where y could
// possibly settle given current neighbor state and injections, and
// pushes it. Conservative by design: contributors that change later
// push y themselves (pushes to dsInvalid ASes are never pruned), so a
// missed future bucket is always re-offered.
func (d *deltaRun) reschedule(y int32, after uint64) {
	best := deltaInf
	consider := func(k uint64) {
		if k > after && k < best {
			best = k
		}
	}
	for _, c := range d.idx.Customers(y) {
		if d.settled[c] && d.sel[c].Class == ClassCustomer {
			consider(deltaKey(ClassCustomer, d.sel[c].PathLen+1, y))
		}
	}
	for _, p := range d.idx.Peers(y) {
		if d.settled[p] && d.sel[p].Class == ClassCustomer {
			consider(deltaKey(ClassPeer, d.sel[p].PathLen+1, y))
		}
	}
	for _, p := range d.idx.Providers(y) {
		if d.settled[p] {
			consider(deltaKey(ClassProvider, d.sel[p].PathLen+1, y))
		}
	}
	for _, inj := range d.injAt[y] {
		consider(deltaKey(inj.Class, 1+inj.Prepend, y))
	}
	if best != deltaInf {
		d.heap.push(best)
	}
}
