package bgp_test

// Differential tests: the dense bucket-queue Propagate must select
// exactly the same route as the retained map-based PropagateReference
// for every AS, across random topologies, random injection sets (all
// three classes, with prepends), and several tie-breakers — including
// the netsim world's hidden-preference tie-breaker the evaluation runs
// under.

import (
	"math/rand"
	"testing"

	"painter/internal/bgp"
	"painter/internal/experiments"
	"painter/internal/topology"
)

// hashTB is a deterministic but "adversarial" tie-breaker: it ranks
// candidates by a seeded hash of (AS, ingress, via), so any divergence
// in candidate sets or ordering between the two engines shows up as a
// different selection.
func hashTB(seed uint64) bgp.TieBreaker {
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	return func(as topology.ASN, cands []bgp.Route) int {
		best, bestH := 0, uint64(0)
		for i, c := range cands {
			h := mix(seed ^ uint64(as)<<32 ^ uint64(c.Ingress)<<8 ^ uint64(c.Via))
			if i == 0 || h < bestH {
				best, bestH = i, h
			}
		}
		return best
	}
}

// randomInjections draws an injection set over the graph's ASes with all
// three classes represented and prepends in [0,3].
func randomInjections(rng *rand.Rand, asns []topology.ASN, n int) []bgp.Injection {
	inj := make([]bgp.Injection, 0, n)
	for i := 0; i < n; i++ {
		class := bgp.RouteClass(i % 3) // customer, peer, provider — all classes
		inj = append(inj, bgp.Injection{
			Neighbor: asns[rng.Intn(len(asns))],
			Class:    class,
			Ingress:  bgp.IngressID(i),
			Prepend:  rng.Intn(4),
		})
	}
	// Duplicate one neighbor under a different ingress to exercise
	// multi-candidate buckets at the injection point itself.
	if n >= 2 {
		inj = append(inj, bgp.Injection{
			Neighbor: inj[0].Neighbor,
			Class:    inj[0].Class,
			Ingress:  bgp.IngressID(n),
			Prepend:  inj[0].Prepend,
		})
	}
	return inj
}

func assertSameSelection(t *testing.T, g *topology.Graph, inj []bgp.Injection, tb bgp.TieBreaker, label string) {
	t.Helper()
	dense, err := bgp.Propagate(g, inj, tb)
	if err != nil {
		t.Fatalf("%s: dense: %v", label, err)
	}
	ref, err := bgp.PropagateReference(g, inj, tb)
	if err != nil {
		t.Fatalf("%s: reference: %v", label, err)
	}
	if len(dense) != len(ref) {
		t.Fatalf("%s: dense settled %d ASes, reference %d", label, len(dense), len(ref))
	}
	for as, rr := range ref {
		dr, ok := dense[as]
		if !ok {
			t.Fatalf("%s: AS %v settled by reference but not dense", label, as)
		}
		if dr != rr {
			t.Fatalf("%s: AS %v selected %+v (dense) vs %+v (reference)", label, as, dr, rr)
		}
	}
}

// TestPropagateMatchesReferenceRandom sweeps ≥20 seeded random
// topologies × injection sets under both the deterministic default and
// the adversarial hash tie-breaker.
func TestPropagateMatchesReferenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cfg := topology.GenConfig{
			Seed: seed, Tier1: 4, Tier2: 16 + int(seed), Stubs: 120,
			MeanStubProviders: 2.2, Tier2PeerProb: 0.3,
			EnterpriseFrac: 0.3, ContentFrac: 0.05,
		}
		g, err := topology.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		asns := g.ASNs()
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(trial)))
			inj := randomInjections(rng, asns, 6+trial*5)
			label := "seed" + string(rune('0'+seed)) + "/trial" + string(rune('0'+trial))
			assertSameSelection(t, g, inj, nil, label+"/min-ingress")
			assertSameSelection(t, g, inj, hashTB(uint64(seed)<<8|uint64(trial)), label+"/hash")
		}
	}
}

// TestPropagateMatchesReferenceNetsimTieBreaker runs the comparison
// under real evaluation conditions: generated deployments and the
// world's hidden-preference tie-breaker (the one every figure
// reproduction resolves routes with).
func TestPropagateMatchesReferenceNetsimTieBreaker(t *testing.T) {
	for _, seed := range []int64{7, 21, 42} {
		env, err := experiments.NewEnv(experiments.ScaleSmall, seed)
		if err != nil {
			t.Fatal(err)
		}
		all := env.Deploy.AllPeeringIDs()
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 4; trial++ {
			// Random non-empty peering subset, including the full set.
			subset := make([]bgp.IngressID, 0, len(all))
			for _, id := range all {
				if trial == 0 || rng.Intn(3) > 0 {
					subset = append(subset, id)
				}
			}
			if len(subset) == 0 {
				subset = all[:1]
			}
			inj, err := env.Deploy.Injections(subset)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSelection(t, env.Graph, inj, env.World.TieBreaker(), "netsim")
		}
	}
}
