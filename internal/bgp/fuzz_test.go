package bgp

// Fuzz targets for the BGP wire codec: parsers must never panic on
// attacker-controlled bytes (the route server feeds them raw socket
// reads), and parse→marshal→parse must be the identity for every
// message that parses.

import (
	"net/netip"
	"reflect"
	"testing"
)

func FuzzParseHeader(f *testing.F) {
	f.Add(Keepalive())
	f.Add([]byte{})
	f.Add(make([]byte, headerLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := ParseHeader(b)
		if err != nil {
			return
		}
		if h.Len < headerLen || h.Len > MaxMessageLen {
			t.Fatalf("accepted header with bad length %d", h.Len)
		}
	})
}

func FuzzParseOpen(f *testing.F) {
	f.Add(Open{Version: 4, AS: 64500, HoldTime: 90, BGPID: 0x0a000001}.Marshal()[headerLen:])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		o, err := ParseOpen(body)
		if err != nil {
			return
		}
		// Re-marshal (empty optional parameters) and re-parse.
		o2, err := ParseOpen(o.Marshal()[headerLen:])
		if err != nil || o2 != o {
			t.Fatalf("Open round trip changed: %+v -> %+v (%v)", o, o2, err)
		}
	})
}

func FuzzParseNotification(f *testing.F) {
	f.Add(Notification{Code: NotifCease, Subcode: 1, Data: []byte("bye")}.Marshal()[headerLen:])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		n, err := ParseNotification(body)
		if err != nil {
			return
		}
		n2, err := ParseNotification(n.Marshal()[headerLen:])
		if err != nil || !reflect.DeepEqual(n, n2) {
			t.Fatalf("Notification round trip changed: %+v -> %+v (%v)", n, n2, err)
		}
	})
}

func FuzzParseUpdate(f *testing.F) {
	mk := func(u Update) []byte {
		b, err := u.Marshal()
		if err != nil {
			panic(err)
		}
		return b[headerLen:]
	}
	f.Add(mk(Update{
		Origin:  0,
		ASPath:  []uint16{64500, 65001},
		NextHop: netip.MustParseAddr("10.0.0.1"),
		NLRI:    []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
	}))
	f.Add(mk(Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")},
	}))
	f.Add(mk(Update{
		Origin:      1,
		ASPath:      []uint16{64500},
		NextHop:     netip.MustParseAddr("10.0.0.2"),
		MED:         50,
		HasMED:      true,
		LocalPref:   200,
		HasLocal:    true,
		Communities: []uint32{64500<<16 | 77},
		NLRI: []netip.Prefix{
			netip.MustParsePrefix("198.51.100.0/25"),
			netip.MustParsePrefix("192.0.2.0/24"),
		},
	}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, body []byte) {
		u, err := ParseUpdate(body)
		if err != nil {
			return
		}
		out, err := u.Marshal()
		if err != nil {
			// Parsed but not re-serializable (e.g. attribute combination
			// we never emit, like NLRI with a missing next hop). The
			// parser tolerating it is fine; nothing more to check.
			return
		}
		u2, err := ParseUpdate(out[headerLen:])
		if err != nil {
			t.Fatalf("marshaled update does not parse: %v", err)
		}
		if !updatesEquivalent(u, u2) {
			t.Fatalf("Update round trip changed:\n  %+v\n  %+v", u, u2)
		}
	})
}

// updatesEquivalent compares the fields Marshal encodes. Attribute
// fields only travel alongside NLRI, so they are compared only then.
func updatesEquivalent(a, b Update) bool {
	if !prefixesEqual(a.Withdrawn, b.Withdrawn) || !prefixesEqual(a.NLRI, b.NLRI) {
		return false
	}
	if len(a.NLRI) == 0 {
		return true
	}
	if a.Origin != b.Origin || a.NextHop != b.NextHop ||
		a.HasMED != b.HasMED || (a.HasMED && a.MED != b.MED) ||
		a.HasLocal != b.HasLocal || (a.HasLocal && a.LocalPref != b.LocalPref) {
		return false
	}
	if len(a.ASPath) != len(b.ASPath) {
		return false
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	if len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	return true
}

func prefixesEqual(a, b []netip.Prefix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
