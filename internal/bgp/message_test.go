package bgp

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func TestOpenRoundTrip(t *testing.T) {
	o := Open{Version: 4, AS: 65001, HoldTime: 90, BGPID: 0x0a000001}
	b := o.Marshal()
	h, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgOpen {
		t.Fatalf("type = %v, want OPEN", h.Type)
	}
	if int(h.Len) != len(b) {
		t.Fatalf("header len %d != message len %d", h.Len, len(b))
	}
	got, err := ParseOpen(b[19:])
	if err != nil {
		t.Fatal(err)
	}
	if got != o {
		t.Errorf("ParseOpen = %+v, want %+v", got, o)
	}
}

func TestOpenRoundTripProperty(t *testing.T) {
	f := func(as, hold uint16, id uint32) bool {
		o := Open{Version: 4, AS: as, HoldTime: hold, BGPID: id}
		got, err := ParseOpen(o.Marshal()[19:])
		return err == nil && got == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUpdateRoundTrip(t *testing.T) {
	u := Update{
		Withdrawn: []netip.Prefix{mustPrefix(t, "10.0.0.0/24")},
		Origin:    OriginIGP,
		ASPath:    []uint16{65001, 65002, 65003},
		NextHop:   netip.MustParseAddr("192.0.2.1"),
		MED:       100,
		HasMED:    true,
		LocalPref: 200,
		HasLocal:  true,
		Communities: []uint32{
			65001<<16 | 100,
			65001<<16 | 200,
		},
		NLRI: []netip.Prefix{
			mustPrefix(t, "198.51.100.0/24"),
			mustPrefix(t, "203.0.113.0/25"),
		},
	}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgUpdate || int(h.Len) != len(b) {
		t.Fatalf("header wrong: %+v for %d bytes", h, len(b))
	}
	got, err := ParseUpdate(b[19:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, u) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, u)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := Update{Withdrawn: []netip.Prefix{mustPrefix(t, "10.1.0.0/16")}}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseUpdate(b[19:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NLRI) != 0 || len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Errorf("withdraw-only round trip wrong: %+v", got)
	}
}

func TestUpdateVariousPrefixLengths(t *testing.T) {
	for _, s := range []string{"0.0.0.0/0", "128.0.0.0/1", "10.0.0.0/8", "10.20.0.0/15", "10.20.30.0/24", "10.20.30.64/26", "10.20.30.40/32"} {
		u := Update{
			Origin:  OriginIGP,
			ASPath:  []uint16{1},
			NextHop: netip.MustParseAddr("192.0.2.1"),
			NLRI:    []netip.Prefix{mustPrefix(t, s)},
		}
		b, err := u.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		got, err := ParseUpdate(b[19:])
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got.NLRI[0] != u.NLRI[0] {
			t.Errorf("%s: got %v", s, got.NLRI[0])
		}
	}
}

func TestUpdateRejectsIPv6(t *testing.T) {
	u := Update{
		Origin:  OriginIGP,
		ASPath:  []uint16{1},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netip.Prefix{netip.MustParsePrefix("2001:db8::/32")},
	}
	if _, err := u.Marshal(); err == nil {
		t.Error("IPv6 NLRI should be rejected")
	}
	u6 := Update{
		Origin:  OriginIGP,
		ASPath:  []uint16{1},
		NextHop: netip.MustParseAddr("2001:db8::1"),
		NLRI:    []netip.Prefix{mustPrefix(t, "10.0.0.0/24")},
	}
	if _, err := u6.Marshal(); err == nil {
		t.Error("IPv6 next hop should be rejected")
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, err := ParseHeader(make([]byte, 5)); err != ErrShortMessage {
		t.Errorf("short header err = %v", err)
	}
	b := Keepalive()
	b[3] = 0 // corrupt marker
	if _, err := ParseHeader(b); err != ErrBadMarker {
		t.Errorf("bad marker err = %v", err)
	}
	b = Keepalive()
	b[16], b[17] = 0, 5 // length < 19
	if _, err := ParseHeader(b); err != ErrBadLength {
		t.Errorf("bad length err = %v", err)
	}
}

func TestParseUpdateErrors(t *testing.T) {
	// Truncated body.
	if _, err := ParseUpdate([]byte{0}); err == nil {
		t.Error("1-byte body should fail")
	}
	// Withdrawn length exceeding body.
	if _, err := ParseUpdate([]byte{0xff, 0xff, 0, 0}); err == nil {
		t.Error("oversized withdrawn length should fail")
	}
	// Valid masked prefix 10.0.0.0/24 parses fine.
	good := []byte{0, 0, 0, 0, 24, 10, 0, 0}
	if _, err := ParseUpdate(good); err != nil {
		t.Errorf("valid masked prefix rejected: %v", err)
	}
	// /20 encoded with byte 10.0.1 → 10.0.1.0/20 has host bits set.
	bad2 := []byte{0, 0, 0, 0, 20, 10, 0, 1}
	if _, err := ParseUpdate(bad2); err == nil {
		t.Error("prefix with host bits should fail")
	}
	// Prefix length > 32.
	if _, err := ParseUpdate([]byte{0, 0, 0, 0, 33, 10, 0, 0, 0, 0}); err == nil {
		t.Error("prefix length 33 should fail")
	}
}

func TestKeepalive(t *testing.T) {
	b := Keepalive()
	h, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgKeepalive || h.Len != 19 {
		t.Errorf("keepalive header wrong: %+v", h)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := Notification{Code: NotifCease, Subcode: 2, Data: []byte("bye")}
	b := n.Marshal()
	h, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgNotification {
		t.Fatalf("type = %v", h.Type)
	}
	got, err := ParseNotification(b[19:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != n.Code || got.Subcode != n.Subcode || !bytes.Equal(got.Data, n.Data) {
		t.Errorf("got %+v, want %+v", got, n)
	}
}

func TestMarshalHeaderLength(t *testing.T) {
	// Every marshal routine must set the header length to the full
	// message size; parse each and check.
	u := Update{Origin: OriginIGP, ASPath: []uint16{1, 2}, NextHop: netip.MustParseAddr("1.2.3.4"),
		NLRI: []netip.Prefix{mustPrefix(t, "9.9.0.0/16")}}
	ub, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]byte{Open{Version: 4}.Marshal(), ub, Keepalive(), Notification{Code: 6}.Marshal()} {
		h, err := ParseHeader(b)
		if err != nil {
			t.Fatal(err)
		}
		if int(h.Len) != len(b) {
			t.Errorf("header length %d != actual %d for type %v", h.Len, len(b), h.Type)
		}
	}
}
