package bgp_test

// Differential and metamorphic tests for PropagateDelta: the delta
// engine must be byte-identical to the full engine (and, transitively,
// to PropagateReference) after arbitrary chains of input mutations —
// injection withdrawals/announcements, prepend and ingress changes, and
// per-AS tie-break flips — under adversarial tie-breakers. The chains
// double as the metamorphic compose property (delta∘delta over two
// changes ≡ full over the composed input) and the recovery property
// (undoing a change reproduces the pre-failure selection byte for
// byte).

import (
	"bytes"
	"math/rand"
	"testing"

	"painter/internal/bgp"
	"painter/internal/experiments"
	"painter/internal/topology"
)

// flipTB is hashTB extended with per-AS flip counters: bumping an AS's
// counter re-rolls its tie-break preferences only, modeling a netsim
// pref-flip event in BGP terms.
type flipTB struct {
	seed  uint64
	flips map[topology.ASN]uint64
}

func newFlipTB(seed uint64) *flipTB {
	return &flipTB{seed: seed, flips: make(map[topology.ASN]uint64)}
}

func (f *flipTB) flip(as topology.ASN) { f.flips[as]++ }

func (f *flipTB) tb() bgp.TieBreaker {
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	return func(as topology.ASN, cands []bgp.Route) int {
		seed := f.seed ^ mix(f.flips[as]+0x9e3779b97f4a7c15)
		best, bestH := 0, uint64(0)
		for i, c := range cands {
			h := mix(seed ^ uint64(as)<<32 ^ uint64(c.Ingress)<<8 ^ uint64(c.Via))
			if i == 0 || h < bestH {
				best, bestH = i, h
			}
		}
		return best
	}
}

func deltaTopology(t *testing.T, seed int64) (*topology.Graph, []topology.ASN) {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{
		Seed: seed, Tier1: 4, Tier2: 14 + int(seed%5), Stubs: 90,
		MeanStubProviders: 2.2, Tier2PeerProb: 0.3,
		EnterpriseFrac: 0.3, ContentFrac: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, g.ASNs()
}

// mutateInjections applies one random mutation, returning the new list
// and the ASes whose tie-breaks were flipped alongside it.
func mutateInjections(rng *rand.Rand, inj []bgp.Injection, asns []topology.ASN, ft *flipTB) ([]bgp.Injection, []topology.ASN) {
	out := append([]bgp.Injection(nil), inj...)
	var flipped []topology.ASN
	switch rng.Intn(6) {
	case 0: // withdraw one injection
		if len(out) > 1 {
			i := rng.Intn(len(out))
			out = append(out[:i], out[i+1:]...)
		}
	case 1: // announce a new injection
		out = append(out, bgp.Injection{
			Neighbor: asns[rng.Intn(len(asns))],
			Class:    bgp.RouteClass(rng.Intn(3)),
			Ingress:  bgp.IngressID(100 + rng.Intn(50)),
			Prepend:  rng.Intn(4),
		})
	case 2: // change one injection's prepend
		if len(out) > 0 {
			out[rng.Intn(len(out))].Prepend = rng.Intn(4)
		}
	case 3: // re-home one injection's ingress tag
		if len(out) > 0 {
			out[rng.Intn(len(out))].Ingress = bgp.IngressID(200 + rng.Intn(50))
		}
	case 4: // flip one AS's tie-break preferences
		as := asns[rng.Intn(len(asns))]
		ft.flip(as)
		flipped = append(flipped, as)
	case 5: // storm: several mutations at once
		for k := 0; k < 2+rng.Intn(3); k++ {
			var f []topology.ASN
			out, f = mutateInjections(rng, out, asns, ft)
			flipped = append(flipped, f...)
		}
	}
	return out, flipped
}

// expectedDiff computes the changed-AS set from two selection maps.
func expectedDiff(prev, next map[topology.ASN]bgp.Route) map[topology.ASN]bool {
	d := make(map[topology.ASN]bool)
	for as, r := range next {
		if pr, ok := prev[as]; !ok || pr != r {
			d[as] = true
		}
	}
	for as := range prev {
		if _, ok := next[as]; !ok {
			d[as] = true
		}
	}
	return d
}

func assertDeltaMatchesFull(t *testing.T, g *topology.Graph, prev *bgp.Result, inj []bgp.Injection, flipped []topology.ASN, tb bgp.TieBreaker, label string) *bgp.Result {
	t.Helper()
	full, err := bgp.PropagateResult(g, inj, tb)
	if err != nil {
		t.Fatalf("%s: full: %v", label, err)
	}
	delta, changed, err := bgp.PropagateDelta(prev, g, inj, flipped, tb)
	if err != nil {
		t.Fatalf("%s: delta: %v", label, err)
	}
	if !bytes.Equal(delta.Bytes(), full.Bytes()) {
		t.Fatalf("%s: delta selection differs from full propagation (delta settled %d, full %d)",
			label, delta.Len(), full.Len())
	}
	// The changed set must be exactly the selection diff vs the base.
	want := expectedDiff(prev.Selections(), full.Selections())
	if len(changed) != len(want) {
		t.Fatalf("%s: changed set has %d ASes, want %d", label, len(changed), len(want))
	}
	for i, as := range changed {
		if !want[as] {
			t.Fatalf("%s: changed set contains unchanged AS %v", label, as)
		}
		if i > 0 && changed[i-1] >= as {
			t.Fatalf("%s: changed set not ascending at %d", label, i)
		}
	}
	return delta
}

// TestPropagateDeltaChains replays randomized mutation chains through
// the delta engine, asserting byte-identical selections against a fresh
// full propagation at every step. Because each step's delta base is the
// previous step's delta output, the chain is the metamorphic compose
// property: delta∘delta∘…∘delta over N changes ≡ full over the final
// composed input.
func TestPropagateDeltaChains(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g, asns := deltaTopology(t, seed)
		rng := rand.New(rand.NewSource(seed * 977))
		ft := newFlipTB(uint64(seed) * 0x9e37)
		inj := randomInjections(rng, asns, 8)
		prev, err := bgp.PropagateResult(g, inj, ft.tb())
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 25; step++ {
			var flipped []topology.ASN
			inj, flipped = mutateInjections(rng, inj, asns, ft)
			prev = assertDeltaMatchesFull(t, g, prev, inj, flipped, ft.tb(),
				"seed "+string(rune('0'+seed))+" step")
		}
	}
}

// TestPropagateDeltaMatchesReference closes the loop with the retained
// map-based oracle: after a mutation chain, the delta output must match
// PropagateReference exactly (the PR 1 harness, now three engines deep).
func TestPropagateDeltaMatchesReference(t *testing.T) {
	g, asns := deltaTopology(t, 3)
	rng := rand.New(rand.NewSource(1234))
	ft := newFlipTB(0xfeed)
	inj := randomInjections(rng, asns, 10)
	prev, err := bgp.PropagateResult(g, inj, ft.tb())
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		var flipped []topology.ASN
		inj, flipped = mutateInjections(rng, inj, asns, ft)
		var changed []topology.ASN
		prev, changed, err = bgp.PropagateDelta(prev, g, inj, flipped, ft.tb())
		if err != nil {
			t.Fatal(err)
		}
		_ = changed
		ref, err := bgp.PropagateReference(g, inj, ft.tb())
		if err != nil {
			t.Fatal(err)
		}
		got := prev.Selections()
		if len(got) != len(ref) {
			t.Fatalf("step %d: delta settled %d ASes, reference %d", step, len(got), len(ref))
		}
		for as, rr := range ref {
			if gr, ok := got[as]; !ok || gr != rr {
				t.Fatalf("step %d: AS %v selected %+v (delta) vs %+v (reference)", step, as, gr, rr)
			}
		}
	}
}

// TestPropagateDeltaRecovery is the recovery metamorphic property:
// withdrawing injections and then restoring the original input must
// reproduce the pre-failure Result byte for byte, and a delta from the
// unchanged input is a pointer-identical no-op.
func TestPropagateDeltaRecovery(t *testing.T) {
	g, asns := deltaTopology(t, 5)
	rng := rand.New(rand.NewSource(55))
	ft := newFlipTB(0xabcd)
	inj := randomInjections(rng, asns, 12)
	base, err := bgp.PropagateResult(g, inj, ft.tb())
	if err != nil {
		t.Fatal(err)
	}

	// Fail: withdraw a third of the injections.
	failed := append([]bgp.Injection(nil), inj[:len(inj)-4]...)
	mid, changed, err := bgp.PropagateDelta(base, g, failed, nil, ft.tb())
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) == 0 {
		t.Fatal("withdrawing injections changed nothing — degenerate scenario")
	}

	// Recover: restore the original injections, delta from the failed state.
	rec, changed2, err := bgp.PropagateDelta(mid, g, inj, nil, ft.tb())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Bytes(), base.Bytes()) {
		t.Fatal("recovery did not reproduce the pre-failure selection")
	}
	// The recovery's changed set must exactly undo the failure's.
	wantBack := expectedDiff(mid.Selections(), base.Selections())
	if len(changed2) != len(wantBack) {
		t.Fatalf("recovery changed %d ASes, want %d", len(changed2), len(wantBack))
	}

	// Unchanged input: prev comes back untouched.
	same, changed3, err := bgp.PropagateDelta(rec, g, inj, nil, ft.tb())
	if err != nil {
		t.Fatal(err)
	}
	if same != rec || changed3 != nil {
		t.Fatal("no-op delta did not return the base Result unchanged")
	}
}

// TestPropagateDeltaNoopAllocs pins the empty-frontier fast path at
// zero allocations: a delta with unchanged injections and no live flip
// must cost one equality scan, nothing more.
func TestPropagateDeltaNoopAllocs(t *testing.T) {
	g, asns := deltaTopology(t, 2)
	rng := rand.New(rand.NewSource(9))
	inj := randomInjections(rng, asns, 8)
	prev, err := bgp.PropagateResult(g, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An unsettled flipped AS is also a no-op: a tie-break nobody
	// exercises cannot move a selection.
	var unsettled []topology.ASN
	for _, as := range asns {
		if _, ok := prev.Route(as); !ok {
			unsettled = append(unsettled, as)
			break
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		res, changed, err := bgp.PropagateDelta(prev, g, inj, unsettled, nil)
		if err != nil || res != prev || changed != nil {
			t.Fatal("no-op delta returned a new result")
		}
	})
	if allocs != 0 {
		t.Fatalf("no-op PropagateDelta allocates %v times per run, want 0", allocs)
	}
}

// TestPropagateDeltaErrors covers the contract violations.
func TestPropagateDeltaErrors(t *testing.T) {
	g, asns := deltaTopology(t, 1)
	rng := rand.New(rand.NewSource(4))
	inj := randomInjections(rng, asns, 6)
	prev, err := bgp.PropagateResult(g, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bgp.PropagateDelta(nil, g, inj, nil, nil); err == nil {
		t.Fatal("nil base accepted")
	}
	other, _ := deltaTopology(t, 7)
	if _, _, err := bgp.PropagateDelta(prev, other, inj, nil, nil); err == nil {
		t.Fatal("foreign-graph base accepted")
	}
	if _, _, err := bgp.PropagateDelta(prev, g, inj, []topology.ASN{0xdeadbeef}, nil); err == nil {
		t.Fatal("unknown flipped AS accepted")
	}
	bad := append([]bgp.Injection(nil), inj...)
	bad[0].Neighbor = 0xdeadbeef
	if _, _, err := bgp.PropagateDelta(prev, g, bad, nil, nil); err == nil {
		t.Fatal("invalid injection accepted")
	}
	bad2 := append([]bgp.Injection(nil), inj...)
	bad2[0].Prepend = 99
	if _, _, err := bgp.PropagateDelta(prev, g, bad2, nil, nil); err == nil {
		t.Fatal("out-of-range prepend accepted")
	}
}

// TestPropagateDeltaNetsimTieBreaker runs the differential under real
// evaluation conditions: a generated deployment and the world's
// hidden-preference tie-breaker, mutating live peering subsets the way
// the resolve cache does.
func TestPropagateDeltaNetsimTieBreaker(t *testing.T) {
	for _, seed := range []int64{7, 21} {
		env, err := experiments.NewEnv(experiments.ScaleSmall, seed)
		if err != nil {
			t.Fatal(err)
		}
		all := env.Deploy.AllPeeringIDs()
		tb := env.World.TieBreaker()
		rng := rand.New(rand.NewSource(seed))
		inj, err := env.Deploy.Injections(all)
		if err != nil {
			t.Fatal(err)
		}
		prev, err := bgp.PropagateResult(env.Graph, inj, tb)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 6; trial++ {
			subset := make([]bgp.IngressID, 0, len(all))
			for _, id := range all {
				if rng.Intn(4) > 0 {
					subset = append(subset, id)
				}
			}
			if len(subset) == 0 {
				subset = all[:1]
			}
			sinj, err := env.Deploy.Injections(subset)
			if err != nil {
				t.Fatal(err)
			}
			prev = assertDeltaMatchesFull(t, env.Graph, prev, sinj, nil, tb, "netsim subset")
		}
	}
}

// TestResultViews covers the Result accessors against the map the full
// engine returns.
func TestResultViews(t *testing.T) {
	g, asns := deltaTopology(t, 4)
	rng := rand.New(rand.NewSource(8))
	inj := randomInjections(rng, asns, 8)
	want, err := bgp.Propagate(g, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bgp.PropagateResult(g, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != len(want) {
		t.Fatalf("Len %d, want %d", res.Len(), len(want))
	}
	sel := res.Selections()
	if len(sel) != len(want) {
		t.Fatalf("Selections has %d entries, want %d", len(sel), len(want))
	}
	for as, r := range want {
		if got, ok := res.Route(as); !ok || got != r {
			t.Fatalf("Route(%v) = %+v, %v; want %+v", as, got, ok, r)
		}
		if sel[as] != r {
			t.Fatalf("Selections[%v] = %+v, want %+v", as, sel[as], r)
		}
	}
	for _, as := range asns {
		if _, ok := want[as]; !ok {
			if _, settled := res.Route(as); settled {
				t.Fatalf("Route(%v) settled, want unsettled", as)
			}
		}
	}
	if _, ok := res.Route(0xdeadbeef); ok {
		t.Fatal("Route of unknown AS reported settled")
	}
	// Diff against nil and against a differing result.
	if d := res.Diff(nil); len(d) != res.Len() {
		t.Fatalf("Diff(nil) returned %d ASes, want %d", len(d), res.Len())
	}
	res2, _, err := bgp.PropagateDelta(res, g, inj[:len(inj)-3], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := res2.Diff(res)
	wantD := expectedDiff(res.Selections(), res2.Selections())
	if len(d) != len(wantD) {
		t.Fatalf("Diff returned %d ASes, want %d", len(d), len(wantD))
	}
	for _, as := range d {
		if !wantD[as] {
			t.Fatalf("Diff contains unchanged AS %v", as)
		}
	}
}
