//go:build !obsstrip

package bgp

// obsEnabled gates Propagate's instrumentation at compile time. The
// default build keeps it on (still costing only a nil check while no
// registry is installed); -tags obsstrip turns the whole branch into
// dead code for the stripped baseline benchmark.
const obsEnabled = true
