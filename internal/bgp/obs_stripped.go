//go:build obsstrip

package bgp

// obsEnabled is false under -tags obsstrip: Propagate's instrumentation
// branch is compiled out entirely, giving the uninstrumented baseline
// that make bench-obs measures overhead against.
const obsEnabled = false
