package bgp

// Result is the retained output of one whole-graph propagation: the
// dense selection and settled arrays plus the injection list that
// produced them. Retaining it is what makes incremental repair possible
// — PropagateDelta reuses the settled remainder and restarts the bucket
// queue only from the frontier an input change invalidates.
//
// A Result is immutable after construction and safe for concurrent use;
// the lazily built views (Selections, sortedInjections) are memoized
// under sync.Once.

import (
	"encoding/binary"
	"sync"

	"painter/internal/topology"
)

// Result holds the selected route of every AS for one prefix, indexed
// by the graph's dense index. Produced by PropagateResult and
// PropagateDelta; treat as read-only.
type Result struct {
	idx          *topology.Index
	sel          []Route // indexed by dense AS id; valid iff settled
	settled      []bool
	settledCount int
	// inj is a private clone of the injections that produced this
	// result, in caller order: PropagateDelta's no-op fast path is an
	// order-sensitive equality check against it.
	inj []Injection

	sortOnce  sync.Once
	injSorted []Injection // inj sorted canonically, for multiset diffs

	mapOnce sync.Once
	selMap  map[topology.ASN]Route
}

// Len returns the number of ASes that settled with a route.
func (r *Result) Len() int { return r.settledCount }

// Route returns the route the given AS selected, if any.
func (r *Result) Route(as topology.ASN) (Route, bool) {
	i, ok := r.idx.ID(as)
	if !ok || !r.settled[i] {
		return Route{}, false
	}
	return r.sel[i], true
}

// Selections returns the selected-route map in the shape Propagate
// returns. It is built once and shared by every caller of the same
// Result — treat it as read-only.
func (r *Result) Selections() map[topology.ASN]Route {
	r.mapOnce.Do(func() {
		r.selMap = r.selectionMap()
	})
	return r.selMap
}

// selectionMap builds a fresh selected-route map.
func (r *Result) selectionMap() map[topology.ASN]Route {
	m := make(map[topology.ASN]Route, r.settledCount)
	for i, n := int32(0), int32(r.idx.Len()); i < n; i++ {
		if r.settled[i] {
			m[r.idx.ASN(i)] = r.sel[i]
		}
	}
	return m
}

// Bytes returns a canonical byte encoding of the selection: the settled
// count, then for every settled AS in ascending ASN order its ASN,
// ingress, path length, class, and via. Two Results encode identically
// iff every AS selects the identical route — the determinism tests pin
// byte equality across engines, worker counts, and process runs.
func (r *Result) Bytes() []byte {
	buf := make([]byte, 0, 4+17*r.settledCount)
	var w [17]byte
	binary.BigEndian.PutUint32(w[:4], uint32(r.settledCount))
	buf = append(buf, w[:4]...)
	for i, n := int32(0), int32(r.idx.Len()); i < n; i++ {
		if !r.settled[i] {
			continue
		}
		rt := r.sel[i]
		binary.BigEndian.PutUint32(w[0:4], uint32(r.idx.ASN(i)))
		binary.BigEndian.PutUint32(w[4:8], uint32(rt.Ingress))
		binary.BigEndian.PutUint32(w[8:12], uint32(rt.PathLen))
		w[12] = byte(rt.Class)
		binary.BigEndian.PutUint32(w[13:17], uint32(rt.Via))
		buf = append(buf, w[:17]...)
	}
	return buf
}

// Diff returns the ASes whose selection differs between r and prev
// (route changed, gained, or lost), in ascending ASN order. prev must
// come from the same graph; a nil or foreign-graph prev returns every
// settled AS of r.
func (r *Result) Diff(prev *Result) []topology.ASN {
	var out []topology.ASN
	n := int32(r.idx.Len())
	if prev == nil || prev.idx != r.idx {
		for i := int32(0); i < n; i++ {
			if r.settled[i] {
				out = append(out, r.idx.ASN(i))
			}
		}
		return out
	}
	for i := int32(0); i < n; i++ {
		if r.settled[i] != prev.settled[i] || (r.settled[i] && r.sel[i] != prev.sel[i]) {
			out = append(out, r.idx.ASN(i))
		}
	}
	return out
}

// sortedInjections returns r's injections in canonical order, built
// once; PropagateDelta merge-walks it against the new injections to
// find the per-neighbor differences that seed the frontier.
func (r *Result) sortedInjections() []Injection {
	r.sortOnce.Do(func() {
		s := append([]Injection(nil), r.inj...)
		sortInjections(s)
		r.injSorted = s
	})
	return r.injSorted
}

// compareInjections orders injections by (Neighbor, Class, Ingress,
// Prepend) — any total order works for the multiset diff; this one
// groups per-neighbor differences contiguously.
func compareInjections(a, b Injection) int {
	switch {
	case a.Neighbor != b.Neighbor:
		if a.Neighbor < b.Neighbor {
			return -1
		}
		return 1
	case a.Class != b.Class:
		if a.Class < b.Class {
			return -1
		}
		return 1
	case a.Ingress != b.Ingress:
		if a.Ingress < b.Ingress {
			return -1
		}
		return 1
	case a.Prepend != b.Prepend:
		if a.Prepend < b.Prepend {
			return -1
		}
		return 1
	}
	return 0
}

func sortInjections(s []Injection) {
	// Insertion sort under a simple quicksort: injection lists are
	// peering-sized (tens to low thousands) and often nearly sorted.
	for len(s) > 12 {
		p := s[len(s)/2]
		i, j := 0, len(s)-1
		for i <= j {
			for compareInjections(s[i], p) < 0 {
				i++
			}
			for compareInjections(p, s[j]) < 0 {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if j < len(s)-i {
			sortInjections(s[:j+1])
			s = s[i:]
		} else {
			sortInjections(s[i:])
			s = s[:j+1]
		}
	}
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && compareInjections(s[k], s[k-1]) < 0; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}
