package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// PeerID identifies a BGP peer within a RIB.
type PeerID uint32

// RIBEntry is one route in a RIB: the path attributes a peer advertised
// for a prefix.
type RIBEntry struct {
	Peer      PeerID
	Prefix    netip.Prefix
	ASPath    []uint16
	NextHop   netip.Addr
	LocalPref uint32
	MED       uint32
	Origin    uint8
}

// better implements the BGP decision process over RIB entries:
// highest LOCAL_PREF, shortest AS_PATH, lowest ORIGIN, lowest MED,
// lowest peer ID (stand-in for lowest router ID).
func (e RIBEntry) better(o RIBEntry) bool {
	if e.LocalPref != o.LocalPref {
		return e.LocalPref > o.LocalPref
	}
	if len(e.ASPath) != len(o.ASPath) {
		return len(e.ASPath) < len(o.ASPath)
	}
	if e.Origin != o.Origin {
		return e.Origin < o.Origin
	}
	if e.MED != o.MED {
		return e.MED < o.MED
	}
	return e.Peer < o.Peer
}

// RIB holds per-peer Adj-RIB-In tables and a Loc-RIB computed by the
// decision process. It is safe for concurrent use.
type RIB struct {
	mu sync.RWMutex
	// adjIn[peer][prefix] = entry
	adjIn map[PeerID]map[netip.Prefix]RIBEntry
	// locRIB[prefix] = best entry
	locRIB map[netip.Prefix]RIBEntry
	// onChange, if set, is invoked (outside no locks... under lock is
	// fine for our uses) when a prefix's best route changes or vanishes.
	onChange func(p netip.Prefix, best *RIBEntry)
}

// NewRIB creates an empty RIB. onChange may be nil.
func NewRIB(onChange func(p netip.Prefix, best *RIBEntry)) *RIB {
	return &RIB{
		adjIn:    make(map[PeerID]map[netip.Prefix]RIBEntry),
		locRIB:   make(map[netip.Prefix]RIBEntry),
		onChange: onChange,
	}
}

// Learn installs or replaces a route from a peer and re-runs the decision
// process for the prefix.
func (r *RIB) Learn(e RIBEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.adjIn[e.Peer]
	if m == nil {
		m = make(map[netip.Prefix]RIBEntry)
		r.adjIn[e.Peer] = m
	}
	m[e.Prefix] = e
	r.decide(e.Prefix)
}

// Withdraw removes a peer's route for a prefix.
func (r *RIB) Withdraw(peer PeerID, p netip.Prefix) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.adjIn[peer]; m != nil {
		if _, ok := m[p]; ok {
			delete(m, p)
			r.decide(p)
		}
	}
}

// DropPeer removes all routes from a peer (session loss).
func (r *RIB) DropPeer(peer PeerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.adjIn[peer]
	delete(r.adjIn, peer)
	for p := range m {
		r.decide(p)
	}
}

// decide recomputes the best route for p. Caller holds the lock.
func (r *RIB) decide(p netip.Prefix) {
	var best *RIBEntry
	for _, m := range r.adjIn {
		if e, ok := m[p]; ok {
			if best == nil || e.better(*best) {
				cp := e
				best = &cp
			}
		}
	}
	old, had := r.locRIB[p]
	switch {
	case best == nil && had:
		delete(r.locRIB, p)
		if r.onChange != nil {
			r.onChange(p, nil)
		}
	case best != nil && (!had || !entriesEqual(old, *best)):
		r.locRIB[p] = *best
		if r.onChange != nil {
			r.onChange(p, best)
		}
	}
}

func entriesEqual(a, b RIBEntry) bool {
	if a.Peer != b.Peer || a.Prefix != b.Prefix || a.NextHop != b.NextHop ||
		a.LocalPref != b.LocalPref || a.MED != b.MED || a.Origin != b.Origin ||
		len(a.ASPath) != len(b.ASPath) {
		return false
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	return true
}

// Best returns the Loc-RIB entry for a prefix.
func (r *RIB) Best(p netip.Prefix) (RIBEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.locRIB[p]
	return e, ok
}

// Prefixes returns all prefixes with a best route, sorted.
func (r *RIB) Prefixes() []netip.Prefix {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]netip.Prefix, 0, len(r.locRIB))
	for p := range r.locRIB {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr() != out[j].Addr() {
			return out[i].Addr().Less(out[j].Addr())
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// Size returns the number of prefixes in the Loc-RIB.
func (r *RIB) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.locRIB)
}

// String summarizes the RIB.
func (r *RIB) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fmt.Sprintf("RIB{peers=%d, prefixes=%d}", len(r.adjIn), len(r.locRIB))
}
