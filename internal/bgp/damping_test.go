package bgp

import (
	"net/netip"
	"testing"
	"time"
)

// fakeClock drives the damper deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestDamper() (*Damper, *fakeClock) {
	c := &fakeClock{t: time.Date(2023, 9, 10, 0, 0, 0, 0, time.UTC)}
	return NewDamper(DefaultDampingConfig(), c.now), c
}

func TestDamperSuppressAfterRepeatedFlaps(t *testing.T) {
	d, _ := newTestDamper()
	p := netip.MustParsePrefix("10.0.0.0/24")
	if d.Suppressed(p) {
		t.Fatal("fresh prefix suppressed")
	}
	d.OnWithdraw(p) // 1000
	if d.Suppressed(p) {
		t.Fatal("one flap should not suppress")
	}
	d.OnWithdraw(p) // 2000 >= threshold
	if !d.Suppressed(p) {
		t.Fatal("two rapid withdrawals should suppress")
	}
}

func TestDamperPenaltyDecays(t *testing.T) {
	d, c := newTestDamper()
	p := netip.MustParsePrefix("10.0.0.0/24")
	d.OnWithdraw(p)
	before := d.Penalty(p)
	c.advance(15 * time.Minute) // one half-life
	after := d.Penalty(p)
	if after < before*0.45 || after > before*0.55 {
		t.Errorf("penalty after one half-life = %v, want ~%v/2", after, before)
	}
	c.advance(10 * 15 * time.Minute)
	if d.Penalty(p) != 0 {
		t.Errorf("penalty should floor to zero, got %v", d.Penalty(p))
	}
}

func TestDamperReuseAfterDecay(t *testing.T) {
	d, c := newTestDamper()
	p := netip.MustParsePrefix("10.0.0.0/24")
	d.OnWithdraw(p)
	d.OnWithdraw(p)
	d.OnWithdraw(p)
	if !d.Suppressed(p) {
		t.Fatal("should be suppressed")
	}
	// 3000 penalty decays below the 750 reuse threshold after two
	// half-lives.
	c.advance(30 * time.Minute)
	if d.Suppressed(p) {
		t.Errorf("penalty %v should have released suppression", d.Penalty(p))
	}
}

func TestDamperMaxSuppressBound(t *testing.T) {
	cfg := DefaultDampingConfig()
	cfg.HalfLife = 24 * time.Hour // so decay never releases in this test
	c := &fakeClock{t: time.Now()}
	d := NewDamper(cfg, c.now)
	p := netip.MustParsePrefix("10.0.0.0/24")
	for i := 0; i < 5; i++ {
		d.OnWithdraw(p)
	}
	if !d.Suppressed(p) {
		t.Fatal("should be suppressed")
	}
	c.advance(cfg.MaxSuppress + time.Minute)
	if d.Suppressed(p) {
		t.Error("MaxSuppress must bound suppression time")
	}
}

func TestDamperAttrChangeCheaperThanWithdraw(t *testing.T) {
	d, _ := newTestDamper()
	pw := netip.MustParsePrefix("10.0.0.0/24")
	pa := netip.MustParsePrefix("10.0.1.0/24")
	d.OnWithdraw(pw)
	d.OnAttrChange(pa)
	if d.Penalty(pa) >= d.Penalty(pw) {
		t.Errorf("attr change penalty %v should be below withdraw penalty %v",
			d.Penalty(pa), d.Penalty(pw))
	}
}

func TestSafeUpdateInterval(t *testing.T) {
	d, c := newTestDamper()
	iv := d.SafeUpdateInterval()
	if iv <= 0 {
		t.Fatalf("interval = %v", iv)
	}
	// Advertising at the safe interval must never suppress, even over
	// many iterations (the orchestrator's pacing guarantee).
	p := netip.MustParsePrefix("10.0.0.0/24")
	for i := 0; i < 200; i++ {
		d.OnAttrChange(p)
		if d.Suppressed(p) {
			t.Fatalf("suppressed at iteration %d despite safe pacing (penalty %v)", i, d.Penalty(p))
		}
		c.advance(iv + time.Second)
	}
	// Advertising 5x faster must eventually suppress.
	d2, c2 := newTestDamper()
	suppressed := false
	for i := 0; i < 200; i++ {
		d2.OnAttrChange(p)
		if d2.Suppressed(p) {
			suppressed = true
			break
		}
		c2.advance(iv / 5)
	}
	if !suppressed {
		t.Error("flapping 5x faster than the safe interval should suppress")
	}
}
