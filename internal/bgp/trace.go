package bgp

// Span-tracing entry point for the propagation engine. Unlike the
// metric handles (package-level atomic, see obs.go), trace parentage
// must flow through the call: a propagation is only meaningful as a
// child of whichever resolve or solve step caused it. Callers without
// a span pass nil and pay one branch.

import (
	"strconv"

	"painter/internal/obs/span"
	"painter/internal/topology"
)

// PropagateTraced is Propagate wrapped in a child span of parent
// recording injection count, settled-AS count, and any error. A nil
// parent (tracing off, or an unsampled trace) delegates directly.
func PropagateTraced(g *topology.Graph, injections []Injection, tb TieBreaker, parent *span.Span) (map[topology.ASN]Route, error) {
	if parent == nil {
		return Propagate(g, injections, tb)
	}
	s := parent.StartChild("bgp.propagate",
		span.A("injections", strconv.Itoa(len(injections))))
	out, err := Propagate(g, injections, tb)
	if err != nil {
		s.SetAttr("error", err.Error())
	} else {
		s.SetAttr("settled", strconv.Itoa(len(out)))
	}
	s.Finish()
	return out, err
}

// PropagateResultTraced is PropagateResult under the same span shape as
// PropagateTraced.
func PropagateResultTraced(g *topology.Graph, injections []Injection, tb TieBreaker, parent *span.Span) (*Result, error) {
	if parent == nil {
		return PropagateResult(g, injections, tb)
	}
	s := parent.StartChild("bgp.propagate",
		span.A("injections", strconv.Itoa(len(injections))))
	res, err := PropagateResult(g, injections, tb)
	if err != nil {
		s.SetAttr("error", err.Error())
	} else {
		s.SetAttr("settled", strconv.Itoa(res.Len()))
	}
	s.Finish()
	return res, err
}

// PropagateDeltaTraced is PropagateDelta wrapped in a child span
// recording the frontier inputs (injections, flipped ASes) and how many
// ASes actually changed — the catchment of the event.
func PropagateDeltaTraced(prev *Result, g *topology.Graph, injections []Injection, flipped []topology.ASN, tb TieBreaker, parent *span.Span) (*Result, []topology.ASN, error) {
	if parent == nil {
		return PropagateDelta(prev, g, injections, flipped, tb)
	}
	s := parent.StartChild("bgp.propagate_delta",
		span.A("injections", strconv.Itoa(len(injections))),
		span.A("flipped", strconv.Itoa(len(flipped))))
	res, changed, err := PropagateDelta(prev, g, injections, flipped, tb)
	if err != nil {
		s.SetAttr("error", err.Error())
	} else {
		s.SetAttr("changed", strconv.Itoa(len(changed)))
	}
	s.Finish()
	return res, changed, err
}
