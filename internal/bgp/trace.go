package bgp

// Span-tracing entry point for the propagation engine. Unlike the
// metric handles (package-level atomic, see obs.go), trace parentage
// must flow through the call: a propagation is only meaningful as a
// child of whichever resolve or solve step caused it. Callers without
// a span pass nil and pay one branch.

import (
	"strconv"

	"painter/internal/obs/span"
	"painter/internal/topology"
)

// PropagateTraced is Propagate wrapped in a child span of parent
// recording injection count, settled-AS count, and any error. A nil
// parent (tracing off, or an unsampled trace) delegates directly.
func PropagateTraced(g *topology.Graph, injections []Injection, tb TieBreaker, parent *span.Span) (map[topology.ASN]Route, error) {
	if parent == nil {
		return Propagate(g, injections, tb)
	}
	s := parent.StartChild("bgp.propagate",
		span.A("injections", strconv.Itoa(len(injections))))
	out, err := Propagate(g, injections, tb)
	if err != nil {
		s.SetAttr("error", err.Error())
	} else {
		s.SetAttr("settled", strconv.Itoa(len(out)))
	}
	s.Finish()
	return out, err
}
