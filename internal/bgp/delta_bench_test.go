package bgp_test

import (
	"testing"

	"painter/internal/bgp"
	"painter/internal/topology"
)

// benchSetup builds a mid-sized topology with one injection per sampled
// neighbor and the settled full-propagation base the delta runs repair.
func benchSetup(b *testing.B) (*topology.Graph, []bgp.Injection, *bgp.Result) {
	b.Helper()
	g, err := topology.Generate(topology.GenConfig{
		Seed: 11, Tier1: 4, Tier2: 20, Stubs: 300,
		MeanStubProviders: 2.3, Tier2PeerProb: 0.3,
		EnterpriseFrac: 0.3, ContentFrac: 0.05,
	})
	if err != nil {
		b.Fatal(err)
	}
	asns := g.ASNs()
	var inj []bgp.Injection
	for i := 0; i < 32; i++ {
		inj = append(inj, bgp.Injection{
			Neighbor: asns[(i*37)%len(asns)],
			Class:    bgp.ClassPeer,
			Ingress:  bgp.IngressID(i),
		})
	}
	base, err := bgp.PropagateResult(g, inj, nil)
	if err != nil {
		b.Fatal(err)
	}
	return g, inj, base
}

// BenchmarkPropagateDelta measures repairing the settled base after one
// injection withdrawal — the per-event cost of the delta engine.
func BenchmarkPropagateDelta(b *testing.B) {
	g, inj, base := benchSetup(b)
	sub := append([]bgp.Injection(nil), inj[:len(inj)-1]...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bgp.PropagateDelta(base, g, sub, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPropagateFull is the from-scratch cost of the same input, the
// denominator of the delta speedup.
func BenchmarkPropagateFull(b *testing.B) {
	g, inj, _ := benchSetup(b)
	sub := append([]bgp.Injection(nil), inj[:len(inj)-1]...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.PropagateResult(g, sub, nil); err != nil {
			b.Fatal(err)
		}
	}
}
