package bgp

// Propagation instrumentation. Propagate is the single hottest function
// in the repo, so its metrics are wired deliberately:
//
//   - A package-level atomic.Pointer holds the metric handles; nil (the
//     default) means disabled, and the check compiles to one load + one
//     predictable branch per Propagate call — nothing per route.
//   - Candidate/bucket accounting is per-bucket, not per-candidate, and
//     only runs when instrumentation is live.
//   - Building with -tags obsstrip sets obsEnabled = false (see
//     obs_enabled.go / obs_stripped.go) and dead-code-eliminates even
//     the branch, producing the fully uninstrumented baseline that
//     make bench-obs compares against.

import (
	"sync/atomic"

	"painter/internal/obs"
)

// propagateMetrics bundles the Propagate metric handles. The delta
// engine shares the handle struct: deltaFrontier/deltaChanged are the
// catchment-size distributions the whole optimization rests on (small
// frontiers are why repair beats re-propagation).
type propagateMetrics struct {
	total      *obs.Counter
	seconds    *obs.Histogram
	candidates *obs.Histogram
	buckets    *obs.Histogram
	settled    *obs.Histogram

	deltaTotal    *obs.Counter
	deltaNoops    *obs.Counter
	deltaSeconds  *obs.Histogram
	deltaFrontier *obs.Histogram
	deltaChanged  *obs.Histogram
}

var propObs atomic.Pointer[propagateMetrics]

// InstrumentPropagate points Propagate's instrumentation at the given
// registry. Passing nil disables it again (the default state). Safe to
// call concurrently with Propagate.
func InstrumentPropagate(r *obs.Registry) {
	if r == nil {
		propObs.Store(nil)
		return
	}
	propObs.Store(&propagateMetrics{
		total:      r.Counter("bgp_propagate_total", "whole-graph route propagations run"),
		seconds:    r.Histogram("bgp_propagate_seconds", "wall time of one Propagate call"),
		candidates: r.Histogram("bgp_propagate_candidates", "candidate routes enqueued per Propagate call"),
		buckets:    r.Histogram("bgp_propagate_buckets", "maximum path-length bucket reached per Propagate call"),
		settled:    r.Histogram("bgp_propagate_settled", "ASes settled with a route per Propagate call"),

		deltaTotal:    r.Counter("bgp_propagate_delta_total", "delta propagations run (incl. no-ops)"),
		deltaNoops:    r.Counter("bgp_propagate_delta_noops", "delta propagations that returned the base unchanged"),
		deltaSeconds:  r.Histogram("bgp_propagate_delta_seconds", "wall time of one PropagateDelta call"),
		deltaFrontier: r.Histogram("bgp_propagate_delta_frontier", "seed buckets invalidated per PropagateDelta call"),
		deltaChanged:  r.Histogram("bgp_propagate_delta_changed", "ASes whose selection changed per PropagateDelta call"),
	})
}
