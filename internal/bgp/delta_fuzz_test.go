package bgp_test

// FuzzPropagateDelta: a fuzz-driven differential between the delta and
// full propagation engines. The fuzzer controls the topology seed and a
// byte script of input mutations (withdraw / announce / re-prepend /
// re-home / tie-break flip); after every step the chained delta result
// must match a fresh full propagation byte for byte. Run via
// `make fuzz` alongside the wire-codec fuzz targets.

import (
	"bytes"
	"testing"

	"painter/internal/bgp"
	"painter/internal/topology"
)

func FuzzPropagateDelta(f *testing.F) {
	f.Add(int64(1), []byte{0x00, 0x13, 0x27, 0x3b})
	f.Add(int64(3), []byte{0x04, 0x04, 0x04, 0x10, 0x21})
	f.Add(int64(7), []byte{0x01, 0x42, 0x99, 0x05, 0x3c, 0x7f, 0x02})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) > 48 {
			script = script[:48]
		}
		g, err := topology.Generate(topology.GenConfig{
			Seed: seed&0x3f + 1, Tier1: 3, Tier2: 8, Stubs: 40,
			MeanStubProviders: 2.0, Tier2PeerProb: 0.3,
			EnterpriseFrac: 0.3, ContentFrac: 0.05,
		})
		if err != nil {
			t.Skip()
		}
		asns := g.ASNs()
		ft := newFlipTB(uint64(seed))
		s := int(seed & 0x7fffffff)

		// Deterministic starting injections from the seed.
		inj := []bgp.Injection{
			{Neighbor: asns[s%len(asns)], Class: bgp.ClassCustomer, Ingress: 1},
			{Neighbor: asns[s*7%len(asns)], Class: bgp.ClassPeer, Ingress: 2},
			{Neighbor: asns[s*13%len(asns)], Class: bgp.ClassProvider, Ingress: 3},
		}
		prev, err := bgp.PropagateResult(g, inj, ft.tb())
		if err != nil {
			t.Fatal(err)
		}

		// One byte per mutation: low bits pick the op, high bits the
		// operand. The chained delta output must match a fresh full
		// propagation after every step.
		for pc, b := range script {
			arg := int(b >> 3)
			var flipped []topology.ASN
			next := append([]bgp.Injection(nil), inj...)
			switch b % 6 {
			case 0: // withdraw
				if len(next) > 0 {
					i := arg % len(next)
					next = append(next[:i], next[i+1:]...)
				}
			case 1: // announce
				next = append(next, bgp.Injection{
					Neighbor: asns[arg%len(asns)],
					Class:    bgp.RouteClass(arg % 3),
					Ingress:  bgp.IngressID(10 + pc),
					Prepend:  arg % 4,
				})
			case 2: // re-prepend
				if len(next) > 0 {
					next[arg%len(next)].Prepend = arg % 4
				}
			case 3: // re-home ingress tag
				if len(next) > 0 {
					next[arg%len(next)].Ingress = bgp.IngressID(60 + arg)
				}
			case 4: // tie-break flip
				as := asns[arg%len(asns)]
				ft.flip(as)
				flipped = append(flipped, as)
			case 5: // no-op step: delta must return prev itself
			}
			full, err := bgp.PropagateResult(g, next, ft.tb())
			if err != nil {
				t.Fatal(err)
			}
			delta, _, err := bgp.PropagateDelta(prev, g, next, flipped, ft.tb())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(delta.Bytes(), full.Bytes()) {
				t.Fatalf("step %d (op %d): delta selection diverged from full propagation", pc, b%6)
			}
			inj, prev = next, delta
		}
	})
}
