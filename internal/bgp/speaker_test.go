package bgp

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// pipeSpeakers returns two connected speakers that have completed the
// handshake.
func pipeSpeakers(t *testing.T) (*Speaker, *Speaker) {
	t.Helper()
	c1, c2 := net.Pipe()
	a := NewSpeaker(c1, 65001, 1, 3*time.Second)
	b := NewSpeaker(c2, 65002, 2, 3*time.Second)
	var wg sync.WaitGroup
	wg.Add(2)
	var errA, errB error
	go func() { defer wg.Done(); errA = a.Handshake() }()
	go func() { defer wg.Done(); errB = b.Handshake() }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("handshake: %v / %v", errA, errB)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestSpeakerHandshake(t *testing.T) {
	a, b := pipeSpeakers(t)
	if a.PeerOpen.AS != 65002 || b.PeerOpen.AS != 65001 {
		t.Errorf("peer AS wrong: %d / %d", a.PeerOpen.AS, b.PeerOpen.AS)
	}
	if a.PeerOpen.BGPID != 2 || b.PeerOpen.BGPID != 1 {
		t.Errorf("peer BGPID wrong")
	}
}

func TestSpeakerUpdateDelivery(t *testing.T) {
	a, b := pipeSpeakers(t)
	got := make(chan Update, 1)
	b.OnUpdate = func(u Update) { got <- u }
	go func() { _ = b.Run() }()
	go func() { _ = a.Run() }()

	u := Update{
		Origin:  OriginIGP,
		ASPath:  []uint16{65001},
		NextHop: netip.MustParseAddr("192.0.2.9"),
		NLRI:    []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")},
	}
	if err := a.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-got:
		if len(g.NLRI) != 1 || g.NLRI[0] != u.NLRI[0] {
			t.Errorf("received %+v", g)
		}
		if g.NextHop != u.NextHop {
			t.Errorf("next hop = %v, want %v", g.NextHop, u.NextHop)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update not delivered")
	}
}

func TestSpeakerWithdrawDelivery(t *testing.T) {
	a, b := pipeSpeakers(t)
	got := make(chan Update, 1)
	b.OnUpdate = func(u Update) { got <- u }
	go func() { _ = b.Run() }()
	go func() { _ = a.Run() }()

	u := Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")}}
	if err := a.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-got:
		if len(g.Withdrawn) != 1 || g.Withdrawn[0] != u.Withdrawn[0] {
			t.Errorf("received %+v", g)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("withdraw not delivered")
	}
}

func TestSpeakerOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	serverUpdates := make(chan Update, 4)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s := NewSpeaker(conn, 64512, 100, 2*time.Second)
		if err := s.Handshake(); err != nil {
			return
		}
		s.OnUpdate = func(u Update) { serverUpdates <- u }
		_ = s.Run()
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewSpeaker(conn, 64513, 200, 2*time.Second)
	if err := c.Handshake(); err != nil {
		t.Fatal(err)
	}
	go func() { _ = c.Run() }()
	defer c.Close()

	for i := 0; i < 3; i++ {
		u := Update{
			Origin:  OriginIGP,
			ASPath:  []uint16{64513},
			NextHop: netip.MustParseAddr("192.0.2.1"),
			NLRI:    []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16)},
		}
		if err := c.SendUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case <-serverUpdates:
		case <-time.After(2 * time.Second):
			t.Fatalf("update %d not received", i)
		}
	}
}

func TestSpeakerCloseSendsNotification(t *testing.T) {
	a, b := pipeSpeakers(t)
	runDone := make(chan error, 1)
	go func() { runDone <- b.Run() }()
	go func() { _ = a.Run() }()
	time.Sleep(50 * time.Millisecond)
	_ = a.Close()
	select {
	case err := <-runDone:
		// A clean close surfaces either as a NOTIFICATION error or EOF
		// (nil) depending on scheduling; both are acceptable terminations.
		_ = err
	case <-time.After(2 * time.Second):
		t.Fatal("peer Run did not terminate after Close")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	a, _ := pipeSpeakers(t)
	_ = a.Close()
	err := a.SendUpdate(Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")}})
	if err == nil {
		t.Error("SendUpdate after Close should fail")
	}
}
