package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// BGP-4 wire protocol (RFC 4271) codec. The Advertisement Orchestrator
// installs computed configurations at PoPs by speaking real BGP UPDATE
// messages to PoP route servers (cmd/painterd), and the failover
// experiment (Fig. 10) counts UPDATE churn the way RIPE RIS collectors
// would, so we implement the subset of the protocol those paths need:
// OPEN, UPDATE with the mandatory path attributes, KEEPALIVE, and
// NOTIFICATION.

// MsgType is the BGP message type code.
type MsgType uint8

// BGP message types (RFC 4271 §4.1).
const (
	MsgOpen         MsgType = 1
	MsgUpdate       MsgType = 2
	MsgNotification MsgType = 3
	MsgKeepalive    MsgType = 4
)

func (t MsgType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

const (
	headerLen = 19
	// MaxMessageLen is the maximum BGP message size (RFC 4271).
	MaxMessageLen = 4096
	markerLen     = 16
)

// Errors returned by the codec.
var (
	ErrShortMessage  = errors.New("bgp: message truncated")
	ErrBadMarker     = errors.New("bgp: header marker not all-ones")
	ErrBadLength     = errors.New("bgp: bad message length")
	ErrBadAttributes = errors.New("bgp: malformed path attributes")
)

// Header is the fixed BGP message header.
type Header struct {
	Len  uint16
	Type MsgType
}

// marshalHeader writes the 19-byte header into dst.
func marshalHeader(dst []byte, bodyLen int, t MsgType) {
	for i := 0; i < markerLen; i++ {
		dst[i] = 0xff
	}
	binary.BigEndian.PutUint16(dst[16:18], uint16(headerLen+bodyLen))
	dst[18] = uint8(t)
}

// ParseHeader decodes a header from the first 19 bytes of b.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < headerLen {
		return Header{}, ErrShortMessage
	}
	for i := 0; i < markerLen; i++ {
		if b[i] != 0xff {
			return Header{}, ErrBadMarker
		}
	}
	h := Header{
		Len:  binary.BigEndian.Uint16(b[16:18]),
		Type: MsgType(b[18]),
	}
	if h.Len < headerLen || h.Len > MaxMessageLen {
		return Header{}, ErrBadLength
	}
	return h, nil
}

// Open is the BGP OPEN message.
type Open struct {
	Version  uint8
	AS       uint16 // 2-byte AS; AS4 would go in capabilities
	HoldTime uint16
	BGPID    uint32
}

// Marshal serializes the OPEN message with an empty optional-parameters
// section.
func (o Open) Marshal() []byte {
	body := make([]byte, 10)
	body[0] = o.Version
	binary.BigEndian.PutUint16(body[1:3], o.AS)
	binary.BigEndian.PutUint16(body[3:5], o.HoldTime)
	binary.BigEndian.PutUint32(body[5:9], o.BGPID)
	body[9] = 0 // opt parm len
	out := make([]byte, headerLen+len(body))
	marshalHeader(out, len(body), MsgOpen)
	copy(out[headerLen:], body)
	return out
}

// ParseOpen decodes an OPEN body (without header).
func ParseOpen(body []byte) (Open, error) {
	if len(body) < 10 {
		return Open{}, ErrShortMessage
	}
	o := Open{
		Version:  body[0],
		AS:       binary.BigEndian.Uint16(body[1:3]),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		BGPID:    binary.BigEndian.Uint32(body[5:9]),
	}
	optLen := int(body[9])
	if len(body) != 10+optLen {
		return Open{}, ErrBadLength
	}
	return o, nil
}

// Origin codes for the ORIGIN path attribute.
const (
	OriginIGP        uint8 = 0
	OriginEGP        uint8 = 1
	OriginIncomplete uint8 = 2
)

// Path attribute type codes.
const (
	AttrOrigin      uint8 = 1
	AttrASPath      uint8 = 2
	AttrNextHop     uint8 = 3
	AttrMED         uint8 = 4
	AttrLocalPref   uint8 = 5
	AttrCommunities uint8 = 8
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// AS_PATH segment types.
const (
	segSet      uint8 = 1
	segSequence uint8 = 2
)

// Update is a BGP UPDATE message carrying withdrawals and/or an
// advertisement of NLRI sharing one set of path attributes.
type Update struct {
	Withdrawn []netip.Prefix
	// Attributes (present when NLRI non-empty):
	Origin      uint8
	ASPath      []uint16
	NextHop     netip.Addr // IPv4
	MED         uint32
	HasMED      bool
	LocalPref   uint32
	HasLocal    bool
	Communities []uint32
	NLRI        []netip.Prefix
}

// Marshal serializes the UPDATE.
func (u Update) Marshal() ([]byte, error) {
	wd, err := marshalPrefixes(u.Withdrawn)
	if err != nil {
		return nil, err
	}
	var attrs []byte
	if len(u.NLRI) > 0 {
		attrs = appendAttr(attrs, AttrOrigin, flagTransitive, []byte{u.Origin})
		attrs = appendAttr(attrs, AttrASPath, flagTransitive, marshalASPath(u.ASPath))
		if !u.NextHop.Is4() {
			return nil, fmt.Errorf("bgp: NEXT_HOP must be IPv4, got %v", u.NextHop)
		}
		nh := u.NextHop.As4()
		attrs = appendAttr(attrs, AttrNextHop, flagTransitive, nh[:])
		if u.HasMED {
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], u.MED)
			attrs = appendAttr(attrs, AttrMED, flagOptional, b[:])
		}
		if u.HasLocal {
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], u.LocalPref)
			attrs = appendAttr(attrs, AttrLocalPref, flagTransitive, b[:])
		}
		if len(u.Communities) > 0 {
			cb := make([]byte, 4*len(u.Communities))
			for i, c := range u.Communities {
				binary.BigEndian.PutUint32(cb[i*4:], c)
			}
			attrs = appendAttr(attrs, AttrCommunities, flagOptional|flagTransitive, cb)
		}
	}
	nlri, err := marshalPrefixes(u.NLRI)
	if err != nil {
		return nil, err
	}
	bodyLen := 2 + len(wd) + 2 + len(attrs) + len(nlri)
	if headerLen+bodyLen > MaxMessageLen {
		return nil, fmt.Errorf("bgp: update too large (%d bytes)", headerLen+bodyLen)
	}
	out := make([]byte, headerLen+bodyLen)
	marshalHeader(out, bodyLen, MsgUpdate)
	p := out[headerLen:]
	binary.BigEndian.PutUint16(p[0:2], uint16(len(wd)))
	copy(p[2:], wd)
	p = p[2+len(wd):]
	binary.BigEndian.PutUint16(p[0:2], uint16(len(attrs)))
	copy(p[2:], attrs)
	copy(p[2+len(attrs):], nlri)
	return out, nil
}

func appendAttr(dst []byte, typ, flags uint8, val []byte) []byte {
	if len(val) > 255 {
		flags |= flagExtLen
		dst = append(dst, flags, typ, byte(len(val)>>8), byte(len(val)))
	} else {
		dst = append(dst, flags, typ, byte(len(val)))
	}
	return append(dst, val...)
}

func marshalASPath(path []uint16) []byte {
	if len(path) == 0 {
		return nil
	}
	out := make([]byte, 2+2*len(path))
	out[0] = segSequence
	out[1] = byte(len(path))
	for i, a := range path {
		binary.BigEndian.PutUint16(out[2+2*i:], a)
	}
	return out
}

// marshalPrefixes encodes prefixes in BGP NLRI format: 1-byte length in
// bits followed by ceil(len/8) bytes of prefix.
func marshalPrefixes(ps []netip.Prefix) ([]byte, error) {
	var out []byte
	for _, p := range ps {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("bgp: only IPv4 NLRI supported, got %v", p)
		}
		bits := p.Bits()
		out = append(out, byte(bits))
		a := p.Addr().As4()
		out = append(out, a[:(bits+7)/8]...)
	}
	return out, nil
}

// ParseUpdate decodes an UPDATE body (without header).
func ParseUpdate(body []byte) (Update, error) {
	var u Update
	if len(body) < 4 {
		return u, ErrShortMessage
	}
	wdLen := int(binary.BigEndian.Uint16(body[0:2]))
	if 2+wdLen+2 > len(body) {
		return u, ErrBadLength
	}
	var err error
	u.Withdrawn, err = parsePrefixes(body[2 : 2+wdLen])
	if err != nil {
		return u, err
	}
	rest := body[2+wdLen:]
	attrLen := int(binary.BigEndian.Uint16(rest[0:2]))
	if 2+attrLen > len(rest) {
		return u, ErrBadLength
	}
	if err := u.parseAttrs(rest[2 : 2+attrLen]); err != nil {
		return u, err
	}
	u.NLRI, err = parsePrefixes(rest[2+attrLen:])
	if err != nil {
		return u, err
	}
	return u, nil
}

func (u *Update) parseAttrs(b []byte) error {
	for len(b) > 0 {
		if len(b) < 3 {
			return ErrBadAttributes
		}
		flags, typ := b[0], b[1]
		var alen, off int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return ErrBadAttributes
			}
			alen = int(binary.BigEndian.Uint16(b[2:4]))
			off = 4
		} else {
			alen = int(b[2])
			off = 3
		}
		if len(b) < off+alen {
			return ErrBadAttributes
		}
		val := b[off : off+alen]
		switch typ {
		case AttrOrigin:
			if alen != 1 {
				return ErrBadAttributes
			}
			u.Origin = val[0]
		case AttrASPath:
			path, err := parseASPath(val)
			if err != nil {
				return err
			}
			u.ASPath = path
		case AttrNextHop:
			if alen != 4 {
				return ErrBadAttributes
			}
			u.NextHop = netip.AddrFrom4([4]byte(val))
		case AttrMED:
			if alen != 4 {
				return ErrBadAttributes
			}
			u.MED = binary.BigEndian.Uint32(val)
			u.HasMED = true
		case AttrLocalPref:
			if alen != 4 {
				return ErrBadAttributes
			}
			u.LocalPref = binary.BigEndian.Uint32(val)
			u.HasLocal = true
		case AttrCommunities:
			if alen%4 != 0 {
				return ErrBadAttributes
			}
			for i := 0; i < alen; i += 4 {
				u.Communities = append(u.Communities, binary.BigEndian.Uint32(val[i:]))
			}
		default:
			// Unknown attributes are skipped (we do not re-propagate, so
			// transitive handling is not needed).
		}
		b = b[off+alen:]
	}
	return nil
}

func parseASPath(b []byte) ([]uint16, error) {
	var out []uint16
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, ErrBadAttributes
		}
		segType, n := b[0], int(b[1])
		if segType != segSequence && segType != segSet {
			return nil, ErrBadAttributes
		}
		if len(b) < 2+2*n {
			return nil, ErrBadAttributes
		}
		for i := 0; i < n; i++ {
			out = append(out, binary.BigEndian.Uint16(b[2+2*i:]))
		}
		b = b[2+2*n:]
	}
	return out, nil
}

func parsePrefixes(b []byte) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		if bits > 32 {
			return nil, fmt.Errorf("bgp: prefix length %d > 32", bits)
		}
		nb := (bits + 7) / 8
		if len(b) < 1+nb {
			return nil, ErrShortMessage
		}
		var a [4]byte
		copy(a[:], b[1:1+nb])
		p := netip.PrefixFrom(netip.AddrFrom4(a), bits)
		if p.Masked() != p {
			return nil, fmt.Errorf("bgp: prefix %v has host bits set", p)
		}
		out = append(out, p)
		b = b[1+nb:]
	}
	return out, nil
}

// Keepalive returns a serialized KEEPALIVE message.
func Keepalive() []byte {
	out := make([]byte, headerLen)
	marshalHeader(out, 0, MsgKeepalive)
	return out
}

// Notification is a BGP NOTIFICATION message.
type Notification struct {
	Code, Subcode uint8
	Data          []byte
}

// Error codes (RFC 4271 §4.5), the subset we emit.
const (
	NotifCease uint8 = 6
)

// Marshal serializes the NOTIFICATION.
func (n Notification) Marshal() []byte {
	body := make([]byte, 2+len(n.Data))
	body[0], body[1] = n.Code, n.Subcode
	copy(body[2:], n.Data)
	out := make([]byte, headerLen+len(body))
	marshalHeader(out, len(body), MsgNotification)
	copy(out[headerLen:], body)
	return out
}

// ParseNotification decodes a NOTIFICATION body.
func ParseNotification(body []byte) (Notification, error) {
	if len(body) < 2 {
		return Notification{}, ErrShortMessage
	}
	return Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
}
