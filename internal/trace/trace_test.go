package trace

import (
	"testing"
	"time"
)

func testAnalysis(t *testing.T) *Analysis {
	t.Helper()
	cap, err := Generate(DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(cap, nil)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestGenerateScale(t *testing.T) {
	cap, err := Generate(DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.Flows) < 5000 || len(cap.Answers) != len(cap.Flows) {
		t.Errorf("capture: %d flows, %d answers", len(cap.Flows), len(cap.Answers))
	}
	for _, f := range cap.Flows[:100] {
		if !f.End.After(f.Start) || f.Bytes <= 0 {
			t.Fatalf("bad flow %+v", f)
		}
	}
}

func TestAnalyzeMatchRate(t *testing.T) {
	an := testAnalysis(t)
	if an.MatchedFlows < an.TotalFlows*95/100 {
		t.Errorf("matched %d of %d flows; pipeline should match nearly all", an.MatchedFlows, an.TotalFlows)
	}
}

func TestCurvesMonotoneDecreasing(t *testing.T) {
	an := testAnalysis(t)
	for c, pts := range an.Curves {
		for i := 1; i < len(pts); i++ {
			if pts[i].FracBytesRemaining > pts[i-1].FracBytesRemaining+1e-9 {
				t.Errorf("%v curve not decreasing at %v", c, pts[i].Offset)
			}
		}
		if pts[0].FracBytesRemaining > 1 || pts[len(pts)-1].FracBytesRemaining < 0 {
			t.Errorf("%v curve out of range", c)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	an := testAnalysis(t)
	at := func(c Cloud, off time.Duration) float64 {
		for _, p := range an.Curves[c] {
			if p.Offset == off {
				return p.FracBytesRemaining
			}
		}
		t.Fatalf("offset %v missing", off)
		return 0
	}
	// Cloud A: ~80% of bytes sent ≥5 min after expiry.
	if v := at(CloudA, 5*time.Minute); v < 0.7 || v > 0.92 {
		t.Errorf("Cloud A at +5min = %.2f, want ~0.8", v)
	}
	// Clouds B and C: ~20% at one minute after expiry.
	for _, c := range []Cloud{CloudB, CloudC} {
		if v := at(c, time.Minute); v < 0.08 || v > 0.4 {
			t.Errorf("%v at +1min = %.2f, want ~0.2", c, v)
		}
	}
	// Ordering: Cloud A must be markedly worse than B and C everywhere
	// after expiry.
	for _, off := range []time.Duration{time.Second, time.Minute, 5 * time.Minute} {
		if at(CloudA, off) <= at(CloudB, off) || at(CloudA, off) <= at(CloudC, off) {
			t.Errorf("Cloud A should exceed B and C at %v", off)
		}
	}
}

func TestFracAfter(t *testing.T) {
	start := time.Date(2022, 12, 1, 10, 0, 0, 0, time.UTC)
	f := FlowRecord{Start: start, End: start.Add(100 * time.Second), Bytes: 1000}
	cases := []struct {
		cut  time.Time
		want float64
	}{
		{start.Add(-time.Second), 1},
		{start, 1},
		{start.Add(50 * time.Second), 0.5},
		{start.Add(100 * time.Second), 0},
		{start.Add(200 * time.Second), 0},
	}
	for _, c := range cases {
		if got := fracAfter(f, c.cut); got != c.want {
			t.Errorf("fracAfter(%v) = %v, want %v", c.cut.Sub(start), got, c.want)
		}
	}
	// Zero-length flow.
	z := FlowRecord{Start: start, End: start}
	if fracAfter(z, start.Add(time.Nanosecond)) != 0 {
		t.Error("zero-length flow should send nothing after any later cut")
	}
}

func TestAnalyzeAttributesToLatestRecord(t *testing.T) {
	base := time.Date(2022, 12, 1, 10, 0, 0, 0, time.UTC)
	cap := &Capture{
		Answers: []DNSAnswer{
			{Client: 1, Cloud: CloudB, Addr: 7, TTL: time.Minute, Time: base},
			{Client: 1, Cloud: CloudC, Addr: 7, TTL: time.Hour, Time: base.Add(10 * time.Minute)},
		},
		Flows: []FlowRecord{
			// Starts after the second answer: must attribute to CloudC's
			// record, whose TTL has not expired → zero post-expiry bytes.
			{Client: 1, Dst: 7, Start: base.Add(11 * time.Minute), End: base.Add(12 * time.Minute), Bytes: 100},
		},
	}
	an, err := Analyze(cap, []time.Duration{0})
	if err != nil {
		t.Fatal(err)
	}
	if an.MatchedFlows != 1 {
		t.Fatalf("matched %d", an.MatchedFlows)
	}
	if v := an.Curves[CloudC][0].FracBytesRemaining; v != 0 {
		t.Errorf("CloudC post-expiry frac = %v, want 0 (record still valid)", v)
	}
	if v := an.Curves[CloudB][0].FracBytesRemaining; v != 0 {
		t.Errorf("CloudB got bytes but flow belongs to CloudC record")
	}
}

func TestUnmatchedFlowIgnored(t *testing.T) {
	base := time.Date(2022, 12, 1, 10, 0, 0, 0, time.UTC)
	cap := &Capture{
		Answers: []DNSAnswer{{Client: 1, Cloud: CloudA, Addr: 7, TTL: time.Minute, Time: base.Add(time.Hour)}},
		Flows:   []FlowRecord{{Client: 1, Dst: 7, Start: base, End: base.Add(time.Minute), Bytes: 100}},
	}
	an, err := Analyze(cap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if an.MatchedFlows != 0 {
		t.Error("flow predating all answers must not match")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Clients: 0, FlowsPerClient: 1}); err == nil {
		t.Error("zero clients should fail")
	}
	if _, err := Generate(GenConfig{Clients: 1, FlowsPerClient: 0}); err == nil {
		t.Error("zero flows should fail")
	}
	if _, err := Generate(GenConfig{Clients: 1, FlowsPerClient: 1, CacheFracScale: 2}); err == nil {
		t.Error("bad cache scale should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Flows) != len(b.Flows) {
		t.Fatal("sizes differ")
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatal("flows differ across same-seed runs")
		}
	}
}

func TestCachedToOutlivedRatio(t *testing.T) {
	an := testAnalysis(t)
	// Cloud A's post-expiry traffic should be dominated by cached-IP
	// starts (the paper observed roughly 2:1 cached:outlived).
	r := an.CachedToOutlivedRatio(CloudA)
	if r < 1.0 || r > 5.0 {
		t.Errorf("Cloud A cached:outlived ratio = %.2f, want roughly 2:1", r)
	}
	if an.CachedBytes[CloudA] <= 0 || an.OutlivedBytes[CloudA] <= 0 {
		t.Error("both post-expiry components should be present for Cloud A")
	}
	// An empty cloud yields zero without dividing by zero.
	empty := &Analysis{CachedBytes: map[Cloud]float64{}, OutlivedBytes: map[Cloud]float64{}}
	if empty.CachedToOutlivedRatio(CloudB) != 0 {
		t.Error("empty ratio should be 0")
	}
}
