// Package trace reproduces the paper's residential traffic analysis
// (§2.2, Fig. 3, Appendix A): a synthetic anonymized capture of DNS
// answers and flow records from residential clients, and the matching
// pipeline that attributes each flow to the latest DNS record and
// measures how much traffic is sent after the record's TTL expires.
//
// The paper's capture is proprietary (Columbia residential buildings);
// the generator synthesizes a workload whose flow-duration/TTL joint
// distribution is tuned per cloud so the same analysis pipeline exhibits
// the published shape: ~80% of Cloud-A bytes sent ≥5 minutes after
// expiry, ~20% for Clouds B and C at one minute.
package trace

import (
	"fmt"
	"sort"
	"time"

	"painter/internal/stats"
)

// Cloud identifies one of the three large clouds of Fig. 3.
type Cloud uint8

// The three clouds.
const (
	CloudA Cloud = iota
	CloudB
	CloudC
	numClouds
)

func (c Cloud) String() string {
	switch c {
	case CloudA:
		return "Cloud A"
	case CloudB:
		return "Cloud B"
	case CloudC:
		return "Cloud C"
	default:
		return fmt.Sprintf("cloud(%d)", uint8(c))
	}
}

// ClientID is an anonymized residential unit.
type ClientID uint32

// Addr is an anonymized destination address token.
type Addr uint64

// DNSAnswer is one observed DNS response delivered to a client.
type DNSAnswer struct {
	Client ClientID
	Cloud  Cloud
	Addr   Addr
	TTL    time.Duration
	Time   time.Time
}

// FlowRecord is one observed 5-tuple flow (payload already discarded,
// per the anonymization pipeline).
type FlowRecord struct {
	Client     ClientID
	Dst        Addr
	Start, End time.Time
	Bytes      int64
}

// Capture is a synthetic packet capture: DNS answers plus flows.
type Capture struct {
	Answers []DNSAnswer
	Flows   []FlowRecord
}

// GenConfig tunes the workload generator.
type GenConfig struct {
	Seed    int64
	Clients int
	// FlowsPerClient is the mean number of cloud flows per client in the
	// capture window.
	FlowsPerClient float64
	// CacheFracScale scales each cloud's cached-IP flow fraction
	// (1 = the calibrated per-cloud defaults; see cloudProfile.cacheFrac).
	CacheFracScale float64
}

// DefaultGenConfig mirrors the paper's capture scale (≈400 units).
func DefaultGenConfig() GenConfig {
	return GenConfig{Seed: 17, Clients: 400, FlowsPerClient: 30, CacheFracScale: 1}
}

// cloudProfile shapes each cloud's DNS TTLs and flow behaviour.
type cloudProfile struct {
	ttl time.Duration
	// flowDur draws a flow duration.
	durMin, durMax time.Duration
	// longFrac is the fraction of long-lived flows (conferencing, sync).
	longFrac               float64
	longDurMin, longDurMax time.Duration
	// cacheFrac is the fraction of flows started from a client-cached IP
	// after the record expired (the paper found cached-IP starts
	// outnumber record-outliving flows roughly 2:1 for post-expiry
	// traffic; per-cloud calibration reproduces Fig. 3's levels).
	cacheFrac                    float64
	cacheReuseMin, cacheReuseMax time.Duration
	bytesMin, bytesMax           int64
	share                        float64 // share of flows going to this cloud
}

var profiles = map[Cloud]cloudProfile{
	// Cloud A: short TTLs, much long-lived traffic, aggressive client IP
	// caching → most bytes land after expiry.
	CloudA: {
		ttl: 30 * time.Second, durMin: 30 * time.Second, durMax: 5 * time.Minute,
		longFrac: 0.55, longDurMin: 20 * time.Minute, longDurMax: 90 * time.Minute,
		cacheFrac:     0.60,
		cacheReuseMin: 5 * time.Minute, cacheReuseMax: 3 * time.Hour,
		bytesMin: 1 << 16, bytesMax: 1 << 28, share: 0.4,
	},
	// Clouds B and C: longer TTLs, shorter flows.
	CloudB: {
		ttl: 5 * time.Minute, durMin: 2 * time.Second, durMax: 4 * time.Minute,
		longFrac: 0.10, longDurMin: 10 * time.Minute, longDurMax: 40 * time.Minute,
		cacheFrac:     0.12,
		cacheReuseMin: 1 * time.Minute, cacheReuseMax: 30 * time.Minute,
		bytesMin: 1 << 12, bytesMax: 1 << 24, share: 0.35,
	},
	CloudC: {
		ttl: 10 * time.Minute, durMin: 1 * time.Second, durMax: 3 * time.Minute,
		longFrac: 0.08, longDurMin: 10 * time.Minute, longDurMax: 30 * time.Minute,
		cacheFrac:     0.10,
		cacheReuseMin: 1 * time.Minute, cacheReuseMax: 40 * time.Minute,
		bytesMin: 1 << 12, bytesMax: 1 << 24, share: 0.25,
	},
}

// Generate synthesizes a capture.
func Generate(cfg GenConfig) (*Capture, error) {
	if cfg.Clients < 1 || cfg.FlowsPerClient <= 0 {
		return nil, fmt.Errorf("trace: bad config %+v", cfg)
	}
	if cfg.CacheFracScale < 0 || cfg.CacheFracScale > 1.5 {
		return nil, fmt.Errorf("trace: CacheFracScale must be in [0,1.5]")
	}
	rng := stats.NewRand(cfg.Seed)
	base := time.Date(2022, 12, 1, 10, 0, 0, 0, time.UTC)
	cap := &Capture{}
	var nextAddr Addr = 1

	dur := func(lo, hi time.Duration) time.Duration {
		return lo + time.Duration(rng.Int63n(int64(hi-lo)+1))
	}

	for c := 0; c < cfg.Clients; c++ {
		client := ClientID(c)
		n := int(cfg.FlowsPerClient * (0.5 + rng.Float64()))
		for f := 0; f < n; f++ {
			// Pick a cloud by share.
			r := rng.Float64()
			var cloud Cloud
			var acc float64
			for cl := CloudA; cl < numClouds; cl++ {
				acc += profiles[cl].share
				if r < acc {
					cloud = cl
					break
				}
			}
			p := profiles[cloud]
			addr := nextAddr
			nextAddr++

			// DNS answer at a random point in the capture window.
			ansTime := base.Add(time.Duration(rng.Int63n(int64(30 * time.Minute))))
			cap.Answers = append(cap.Answers, DNSAnswer{
				Client: client, Cloud: cloud, Addr: addr, TTL: p.ttl, Time: ansTime,
			})

			// Flow start: either soon after the answer (fresh lookup) or,
			// for cache-reuse flows, well after TTL expiry.
			var start time.Time
			if rng.Float64() < p.cacheFrac*cfg.CacheFracScale {
				start = ansTime.Add(p.ttl + dur(p.cacheReuseMin, p.cacheReuseMax))
			} else {
				start = ansTime.Add(dur(0, 2*time.Second))
			}
			d := dur(p.durMin, p.durMax)
			if rng.Float64() < p.longFrac {
				d = dur(p.longDurMin, p.longDurMax)
			}
			bytes := p.bytesMin + rng.Int63n(p.bytesMax-p.bytesMin+1)
			cap.Flows = append(cap.Flows, FlowRecord{
				Client: client, Dst: addr, Start: start, End: start.Add(d), Bytes: bytes,
			})
		}
	}
	return cap, nil
}

// CurvePoint is one point of the Fig. 3 curve.
type CurvePoint struct {
	// Offset is time relative to DNS record expiration.
	Offset time.Duration
	// FracBytesRemaining is the fraction of all bytes (to this cloud)
	// sent at or after expiry+Offset.
	FracBytesRemaining float64
}

// Analysis is the Fig. 3 result: one curve per cloud.
type Analysis struct {
	Curves map[Cloud][]CurvePoint
	// MatchedFlows / TotalFlows report pipeline match rate.
	MatchedFlows, TotalFlows int
	// CachedBytes / OutlivedBytes decompose post-expiry traffic per
	// cloud: bytes from flows STARTED after their record expired
	// (client-cached IPs) vs bytes sent after expiry by flows started
	// while the record was valid (flows outliving the TTL). The paper
	// observed roughly a 2:1 cached:outlived ratio (§2.2).
	CachedBytes, OutlivedBytes map[Cloud]float64
}

// CachedToOutlivedRatio returns CachedBytes/OutlivedBytes for a cloud
// (0 when no outlived bytes).
func (a *Analysis) CachedToOutlivedRatio(c Cloud) float64 {
	out := a.OutlivedBytes[c]
	if out == 0 {
		return 0
	}
	return a.CachedBytes[c] / out
}

// StandardOffsets are Fig. 3's x-axis points.
var StandardOffsets = []time.Duration{
	-time.Minute, -time.Second, 0, time.Second, time.Minute, 5 * time.Minute, time.Hour,
}

// Analyze runs the matching pipeline: each flow is attributed to the
// latest DNS answer delivered to the same client for the same
// destination address at or before the flow start (Appendix A). For
// each cloud it then computes, at each offset from record expiration,
// the fraction of bytes transmitted at or after that instant, assuming
// a uniform byte rate across each flow's lifetime.
func Analyze(cap *Capture, offsets []time.Duration) (*Analysis, error) {
	if len(offsets) == 0 {
		offsets = StandardOffsets
	}
	type key struct {
		c ClientID
		a Addr
	}
	answers := make(map[key][]DNSAnswer)
	for _, a := range cap.Answers {
		k := key{a.Client, a.Addr}
		answers[k] = append(answers[k], a)
	}
	for _, as := range answers {
		sort.Slice(as, func(i, j int) bool { return as[i].Time.Before(as[j].Time) })
	}

	totalBytes := make(map[Cloud]float64)
	afterBytes := make(map[Cloud][]float64) // per offset
	for c := CloudA; c < numClouds; c++ {
		afterBytes[c] = make([]float64, len(offsets))
	}

	an := &Analysis{
		Curves:        make(map[Cloud][]CurvePoint),
		TotalFlows:    len(cap.Flows),
		CachedBytes:   make(map[Cloud]float64),
		OutlivedBytes: make(map[Cloud]float64),
	}
	for _, f := range cap.Flows {
		as := answers[key{f.Client, f.Dst}]
		// Latest answer at or before flow start.
		idx := sort.Search(len(as), func(i int) bool { return as[i].Time.After(f.Start) }) - 1
		if idx < 0 {
			continue
		}
		rec := as[idx]
		an.MatchedFlows++
		expiry := rec.Time.Add(rec.TTL)
		totalBytes[rec.Cloud] += float64(f.Bytes)
		for oi, off := range offsets {
			cut := expiry.Add(off)
			afterBytes[rec.Cloud][oi] += float64(f.Bytes) * fracAfter(f, cut)
		}
		post := float64(f.Bytes) * fracAfter(f, expiry)
		if f.Start.After(expiry) {
			an.CachedBytes[rec.Cloud] += post
		} else {
			an.OutlivedBytes[rec.Cloud] += post
		}
	}
	for c := CloudA; c < numClouds; c++ {
		tb := totalBytes[c]
		pts := make([]CurvePoint, len(offsets))
		for oi, off := range offsets {
			frac := 0.0
			if tb > 0 {
				frac = afterBytes[c][oi] / tb
			}
			pts[oi] = CurvePoint{Offset: off, FracBytesRemaining: frac}
		}
		an.Curves[c] = pts
	}
	return an, nil
}

// fracAfter returns the fraction of the flow's bytes sent at or after
// cut, assuming uniform rate over [Start, End].
func fracAfter(f FlowRecord, cut time.Time) float64 {
	if !cut.After(f.Start) {
		return 1
	}
	if !cut.Before(f.End) {
		return 0
	}
	total := f.End.Sub(f.Start)
	if total <= 0 {
		return 0
	}
	return float64(f.End.Sub(cut)) / float64(total)
}
