package tmproto

import (
	"bytes"
	"net/netip"
	"testing"
)

func TestGRERoundTrip(t *testing.T) {
	inner := AppendProbe(nil, Probe{Seq: 42, SentUnixNano: 1234}, false)
	frame := AppendGRE(nil, 0xdeadbeef, 77, inner)
	if len(frame) != len(inner)+GREOverhead {
		t.Fatalf("frame len = %d, want %d", len(frame), len(inner)+GREOverhead)
	}
	key, seq, got, err := ParseGRE(frame)
	if err != nil {
		t.Fatal(err)
	}
	if key != 0xdeadbeef || seq != 77 {
		t.Fatalf("key/seq = %#x/%d", key, seq)
	}
	if !bytes.Equal(got, inner) {
		t.Fatal("inner datagram changed")
	}
	// The inner bytes parse as the original probe.
	p, reply, err := ParseProbe(got)
	if err != nil || reply || p.Seq != 42 {
		t.Fatalf("inner probe: %+v/%v (%v)", p, reply, err)
	}
}

func TestGREAppendsToExisting(t *testing.T) {
	prefix := []byte("prefix")
	frame := AppendGRE(append([]byte(nil), prefix...), 1, 2, []byte("inner"))
	if !bytes.HasPrefix(frame, prefix) {
		t.Fatal("AppendGRE clobbered the prefix")
	}
	if _, _, inner, err := ParseGRE(frame[len(prefix):]); err != nil || string(inner) != "inner" {
		t.Fatalf("inner = %q (%v)", inner, err)
	}
}

// TestDetectMode pins the one-byte mode discriminator: native datagrams
// lead with the magic's high byte (0x50), GRE frames with the fixed
// flag byte (0x30). Both receivers branch on this before parsing.
func TestDetectMode(t *testing.T) {
	native := AppendProbe(nil, Probe{Seq: 1}, false)
	if m := DetectMode(native); m != WireNative {
		t.Fatalf("native datagram detected as %v", m)
	}
	if native[0] != 0x50 {
		t.Fatalf("native first byte = %#x", native[0])
	}
	gre := AppendGRE(nil, 9, 9, native)
	if m := DetectMode(gre); m != WireGRE {
		t.Fatalf("GRE frame detected as %v", m)
	}
	if m := DetectMode(nil); m != WireNative {
		t.Fatalf("empty datagram detected as %v", m)
	}
	if WireNative.String() != "native" || WireGRE.String() != "gre" {
		t.Fatal("WireMode strings")
	}
}

func TestParseGREErrors(t *testing.T) {
	good := AppendGRE(nil, 1, 2, AppendProbe(nil, Probe{Seq: 3}, false))

	short := good[:GREOverhead-1]
	if _, _, _, err := ParseGRE(short); err != ErrTooShort {
		t.Fatalf("short frame: %v", err)
	}

	notGRE := append([]byte(nil), good...)
	notGRE[0] = 0x50
	if _, _, _, err := ParseGRE(notGRE); err != ErrNotGRE {
		t.Fatalf("native bytes: %v", err)
	}

	badVer := append([]byte(nil), good...)
	badVer[1] = 0x07
	if _, _, _, err := ParseGRE(badVer); err != ErrGREFlags {
		t.Fatalf("bad version: %v", err)
	}

	badProto := append([]byte(nil), good...)
	badProto[2], badProto[3] = 0x08, 0x00 // ethertype IPv4, not TM
	if _, _, _, err := ParseGRE(badProto); err != ErrGREProto {
		t.Fatalf("bad proto: %v", err)
	}
}

// TestDestinationGREFlag checks the flags byte carries GRE alongside
// anycast, and that pre-GRE encodings (bare 0/1) still parse.
func TestDestinationGREFlag(t *testing.T) {
	dests := []Destination{
		{Addr: netip.MustParseAddr("198.51.100.1"), Port: 4000, PoP: 1},
		{Addr: netip.MustParseAddr("198.51.100.2"), Port: 4001, PoP: 2, Anycast: true},
		{Addr: netip.MustParseAddr("198.51.100.3"), Port: 4002, PoP: 3, GRE: true},
		{Addr: netip.MustParseAddr("198.51.100.4"), Port: 4003, PoP: 4, Anycast: true, GRE: true},
	}
	buf, err := AppendResolveReply(nil, ResolveReply{Service: "svc", Destinations: dests})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseResolveReply(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range out.Destinations {
		if d != dests[i] {
			t.Fatalf("destination %d: %+v != %+v", i, d, dests[i])
		}
	}
}

// FuzzGREDecode throws arbitrary bytes at the GRE decoder: it must
// never panic, and whatever parses must re-frame byte-identically.
func FuzzGREDecode(f *testing.F) {
	inner := AppendProbe(nil, Probe{Seq: 5, SentUnixNano: 99}, false)
	f.Add(AppendGRE(nil, 0, 0, inner))
	f.Add(AppendGRE(nil, 0xffffffff, 0xffffffff, nil))
	f.Add(AppendGRE(nil, 7, 8, []byte("not a TM datagram")))
	f.Add([]byte{})
	f.Add([]byte{0x30})
	f.Add([]byte{0x30, 0x00, 0x50, 0x41})
	f.Add(bytes.Repeat([]byte{0x30}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		key, seq, in, err := ParseGRE(b)
		if err != nil {
			return
		}
		out := AppendGRE(nil, key, seq, in)
		if !bytes.Equal(out, b) {
			t.Fatalf("GRE re-frame changed bytes: %x -> %x", b, out)
		}
		if DetectMode(b) != WireGRE {
			t.Fatal("parsed GRE frame not detected as GRE")
		}
	})
}
