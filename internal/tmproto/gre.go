package tmproto

import (
	"encoding/binary"
	"errors"
)

// GRE-style framing: a second wire mode in which every TM datagram is
// wrapped in an RFC 2890-shaped GRE header carrying a key (the tunnel
// identity) and a sequence number. Middleboxes and flow-samplers that
// already understand GRE-over-UDP can then classify TM tunnels without
// learning the native protocol, at the cost of GREOverhead extra bytes
// per packet.
//
// The two modes are distinguishable from the first byte alone: a native
// datagram starts with Magic 0x5041 (byte 0x50), a GRE frame with the
// fixed flag byte 0x30 (key-present | sequence-present). DetectMode
// classifies a datagram; receivers that speak both modes answer in the
// mode the peer used, so the choice is negotiated per destination (the
// Destination.GRE flag in a resolve reply) with no handshake.

// Wire layout, 12 bytes before the inner native datagram:
//
//	byte 0    0x30  — flags: key present (0x20) | sequence present (0x10)
//	byte 1    0x00  — version 0
//	bytes 2-3 protocol type, ProtoTypeTM (the TM magic, reused as an
//	          ethertype-style code point)
//	bytes 4-7 key    (uint32, big-endian)
//	bytes 8-11 seq   (uint32, big-endian)
const (
	greFlagByte = 0x30
	// ProtoTypeTM is the GRE protocol-type code point for an inner TM
	// datagram.
	ProtoTypeTM uint16 = Magic
	// GREOverhead is the framing cost per datagram in GRE mode.
	GREOverhead = 12
)

// WireMode says how a datagram is framed on the tunnel.
type WireMode uint8

const (
	// WireNative is the bare TM datagram (the default).
	WireNative WireMode = iota
	// WireGRE wraps each TM datagram in a GRE-style header.
	WireGRE
)

func (m WireMode) String() string {
	if m == WireGRE {
		return "gre"
	}
	return "native"
}

// GRE decode errors.
var (
	ErrNotGRE   = errors.New("tmproto: not a GRE frame")
	ErrGREFlags = errors.New("tmproto: unsupported GRE flags/version")
	ErrGREProto = errors.New("tmproto: GRE protocol type not TM")
)

// DetectMode classifies a datagram by its first byte. It never errors:
// garbage classifies as WireNative and then fails native parsing, so
// malformed-counter accounting stays in one place.
func DetectMode(b []byte) WireMode {
	if len(b) > 0 && b[0] == greFlagByte {
		return WireGRE
	}
	return WireNative
}

// AppendGRE wraps inner (a complete native TM datagram) in a GRE frame,
// appending to dst.
func AppendGRE(dst []byte, key, seq uint32, inner []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, GREOverhead)...)
	h := dst[off:]
	h[0] = greFlagByte
	h[1] = 0
	binary.BigEndian.PutUint16(h[2:4], ProtoTypeTM)
	binary.BigEndian.PutUint32(h[4:8], key)
	binary.BigEndian.PutUint32(h[8:12], seq)
	return append(dst, inner...)
}

// ParseGRE unwraps a GRE frame, returning the key, sequence number and
// a zero-copy view of the inner native datagram. The inner datagram is
// not itself validated — feed it to PeekType/Parse* as usual.
func ParseGRE(b []byte) (key, seq uint32, inner []byte, err error) {
	if len(b) < GREOverhead {
		return 0, 0, nil, ErrTooShort
	}
	if b[0] != greFlagByte {
		return 0, 0, nil, ErrNotGRE
	}
	if b[1] != 0 {
		return 0, 0, nil, ErrGREFlags
	}
	if binary.BigEndian.Uint16(b[2:4]) != ProtoTypeTM {
		return 0, 0, nil, ErrGREProto
	}
	return binary.BigEndian.Uint32(b[4:8]),
		binary.BigEndian.Uint32(b[8:12]),
		b[GREOverhead:], nil
}
