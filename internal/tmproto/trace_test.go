package tmproto

import (
	"bytes"
	"net/netip"
	"testing"
)

var traceTestFlow = FlowKey{
	Proto:   17,
	Src:     netip.MustParseAddr("10.0.0.1"),
	Dst:     netip.MustParseAddr("192.0.2.9"),
	SrcPort: 1234, DstPort: 443,
}

func TestProbeTraceRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xa1b2c3d4e5f60718, SpanID: 0x1122334455667788}
	wire := AppendProbe(nil, Probe{Seq: 42, SentUnixNano: 777, Trace: tc}, false)
	if len(wire) != headerLen+traceLen+probeBodyLen {
		t.Fatalf("traced probe length %d", len(wire))
	}
	p, reply, err := ParseProbe(wire)
	if err != nil || reply {
		t.Fatalf("parse traced probe: %v reply=%v", err, reply)
	}
	if p.Trace != tc || p.Seq != 42 || p.SentUnixNano != 777 {
		t.Fatalf("traced probe round trip: %+v", p)
	}

	// MakeReply's in-place type flip must echo the trace block intact —
	// the edge→pop→edge stitch relies on it.
	r, err := MakeReply(wire)
	if err != nil {
		t.Fatalf("MakeReply: %v", err)
	}
	pr, isReply, err := ParseProbe(r)
	if err != nil || !isReply {
		t.Fatalf("parse reply: %v reply=%v", err, isReply)
	}
	if pr.Trace != tc {
		t.Fatalf("reply lost trace context: %+v", pr.Trace)
	}
}

func TestDataTraceRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 7, SpanID: 9}
	payload := []byte("hello through the tunnel")
	wire, err := AppendData(nil, Data{Flow: traceTestFlow, Payload: payload, Trace: tc})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseData(wire)
	if err != nil {
		t.Fatal(err)
	}
	if d.Trace != tc || d.Flow != traceTestFlow || !bytes.Equal(d.Payload, payload) {
		t.Fatalf("traced data round trip: %+v", d)
	}
}

func TestUntracedWireUnchanged(t *testing.T) {
	// Messages without a trace context must serialize exactly as before
	// the flag existed: same length, zero flags word.
	wire := AppendProbe(nil, Probe{Seq: 1, SentUnixNano: 2}, false)
	if len(wire) != headerLen+probeBodyLen {
		t.Fatalf("untraced probe grew to %d bytes", len(wire))
	}
	if wire[4]|wire[5]|wire[6]|wire[7] != 0 {
		t.Fatalf("untraced probe has nonzero flags: % x", wire[4:8])
	}
	dw, err := AppendData(nil, Data{Flow: traceTestFlow, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if len(dw) != Overhead()+1 {
		t.Fatalf("untraced data grew to %d bytes (overhead %d)", len(dw), Overhead())
	}
}

func TestHalfZeroTraceNormalizes(t *testing.T) {
	// A flagged block whose span ID is zero does not name a span; parse
	// normalizes it to the zero context so append/parse round trips.
	wire := AppendProbe(nil, Probe{Seq: 3, Trace: TraceContext{TraceID: 5}}, false)
	if len(wire) != headerLen+probeBodyLen {
		t.Fatalf("invalid trace context was serialized: %d bytes", len(wire))
	}
	p, _, err := ParseProbe(wire)
	if err != nil {
		t.Fatal(err)
	}
	if p.Trace != (TraceContext{}) {
		t.Fatalf("half-zero context survived: %+v", p.Trace)
	}
}

func TestTraceBlockTruncated(t *testing.T) {
	// Flag set, block missing → ErrTooShort for every parser.
	hdr := []byte{0x50, 0x41, 0x01, 0x02, 0x00, 0x00, 0x00, 0x01, 0xaa, 0xbb}
	if _, _, err := ParseProbe(hdr); err == nil {
		t.Fatal("ParseProbe accepted a truncated trace block")
	}
	hdr[3] = uint8(TypeData)
	if _, err := ParseData(hdr); err == nil {
		t.Fatal("ParseData accepted a truncated trace block")
	}
	hdr[3] = uint8(TypeResolve)
	if _, err := ParseResolve(hdr); err == nil {
		t.Fatal("ParseResolve accepted a truncated trace block")
	}
}
