package tmproto

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func key() FlowKey {
	return FlowKey{
		Proto:   6,
		Src:     netip.MustParseAddr("10.1.2.3"),
		Dst:     netip.MustParseAddr("198.51.100.7"),
		SrcPort: 51234,
		DstPort: 443,
	}
}

func TestDataRoundTrip(t *testing.T) {
	payload := []byte("hello painter")
	b, err := AppendData(nil, Data{Flow: key(), Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	typ, err := PeekType(b)
	if err != nil || typ != TypeData {
		t.Fatalf("PeekType = %v, %v", typ, err)
	}
	d, err := ParseData(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Flow != key() {
		t.Errorf("flow = %v", d.Flow)
	}
	if !bytes.Equal(d.Payload, payload) {
		t.Errorf("payload = %q", d.Payload)
	}
	// Zero-copy: payload must alias the input buffer.
	if len(d.Payload) > 0 && &d.Payload[0] != &b[len(b)-len(payload)] {
		t.Error("ParseData copied the payload")
	}
}

func TestDataAppendsToExisting(t *testing.T) {
	prefix := []byte{1, 2, 3}
	b, err := AppendData(append([]byte(nil), prefix...), Data{Flow: key(), Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b[:3], prefix) {
		t.Error("AppendData clobbered prefix")
	}
	if _, err := ParseData(b[3:]); err != nil {
		t.Error(err)
	}
}

func TestDataRejectsIPv6Flow(t *testing.T) {
	fk := key()
	fk.Src = netip.MustParseAddr("::1")
	if _, err := AppendData(nil, Data{Flow: fk}); err == nil {
		t.Error("IPv6 flow key should fail")
	}
}

func TestProbeRoundTrip(t *testing.T) {
	p := Probe{Seq: 42, SentUnixNano: 1234567890123}
	b := AppendProbe(nil, p, false)
	got, isReply, err := ParseProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if isReply || got != p {
		t.Errorf("got %+v reply=%v", got, isReply)
	}
	rb := AppendProbe(nil, p, true)
	got, isReply, err = ParseProbe(rb)
	if err != nil || !isReply || got != p {
		t.Errorf("reply round trip: %+v %v %v", got, isReply, err)
	}
}

func TestProbeRoundTripProperty(t *testing.T) {
	f := func(seq uint32, nanos int64) bool {
		p := Probe{Seq: seq, SentUnixNano: nanos}
		got, _, err := ParseProbe(AppendProbe(nil, p, false))
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeReplyInPlace(t *testing.T) {
	b := AppendProbe(nil, Probe{Seq: 7, SentUnixNano: 99}, false)
	r, err := MakeReply(b)
	if err != nil {
		t.Fatal(err)
	}
	if &r[0] != &b[0] {
		t.Error("MakeReply must not reallocate")
	}
	p, isReply, err := ParseProbe(r)
	if err != nil || !isReply || p.Seq != 7 || p.SentUnixNano != 99 {
		t.Errorf("reply wrong: %+v %v %v", p, isReply, err)
	}
	// MakeReply on non-probe fails.
	db, _ := AppendData(nil, Data{Flow: key(), Payload: nil})
	if _, err := MakeReply(db); err == nil {
		t.Error("MakeReply on DATA should fail")
	}
}

func TestResolveRoundTrip(t *testing.T) {
	b, err := AppendResolve(nil, Resolve{Service: "teleconf"})
	if err != nil {
		t.Fatal(err)
	}
	r, err := ParseResolve(b)
	if err != nil || r.Service != "teleconf" {
		t.Fatalf("got %+v, %v", r, err)
	}
	// Long service name rejected.
	long := make([]byte, 300)
	if _, err := AppendResolve(nil, Resolve{Service: string(long)}); err == nil {
		t.Error("long service should fail")
	}
}

func TestResolveReplyRoundTrip(t *testing.T) {
	rr := ResolveReply{
		Service: "svc",
		Destinations: []Destination{
			{Addr: netip.MustParseAddr("2.2.2.2"), Port: 4000, PoP: 1},
			{Addr: netip.MustParseAddr("3.3.3.3"), Port: 4001, PoP: 2},
			{Addr: netip.MustParseAddr("1.1.1.1"), Port: 4002, PoP: 0, Anycast: true},
		},
	}
	b, err := AppendResolveReply(nil, rr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseResolveReply(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != rr.Service || len(got.Destinations) != 3 {
		t.Fatalf("got %+v", got)
	}
	for i := range rr.Destinations {
		if got.Destinations[i] != rr.Destinations[i] {
			t.Errorf("dest %d = %+v, want %+v", i, got.Destinations[i], rr.Destinations[i])
		}
	}
}

func TestResolveReplyEmpty(t *testing.T) {
	b, err := AppendResolveReply(nil, ResolveReply{Service: "s"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseResolveReply(b)
	if err != nil || len(got.Destinations) != 0 {
		t.Errorf("empty reply: %+v %v", got, err)
	}
}

func TestPeekTypeErrors(t *testing.T) {
	if _, err := PeekType([]byte{1, 2}); err != ErrTooShort {
		t.Errorf("short: %v", err)
	}
	b := AppendProbe(nil, Probe{}, false)
	b[0] = 0
	if _, err := PeekType(b); err != ErrBadMagic {
		t.Errorf("magic: %v", err)
	}
	b = AppendProbe(nil, Probe{}, false)
	b[2] = 99
	if _, err := PeekType(b); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	b = AppendProbe(nil, Probe{}, false)
	b[3] = 200
	if _, err := PeekType(b); err != ErrBadType {
		t.Errorf("type: %v", err)
	}
}

func TestParseTruncated(t *testing.T) {
	full, _ := AppendData(nil, Data{Flow: key(), Payload: []byte("abc")})
	for n := 8; n < 8+13; n++ {
		if _, err := ParseData(full[:n]); err == nil {
			t.Errorf("truncated data at %d parsed", n)
		}
	}
	pb := AppendProbe(nil, Probe{Seq: 1}, false)
	if _, _, err := ParseProbe(pb[:10]); err == nil {
		t.Error("truncated probe parsed")
	}
	rb, _ := AppendResolveReply(nil, ResolveReply{Service: "s", Destinations: []Destination{
		{Addr: netip.MustParseAddr("1.1.1.1")}}})
	for n := 9; n < len(rb); n++ {
		if _, err := ParseResolveReply(rb[:n]); err == nil {
			t.Errorf("truncated resolve reply at %d parsed", n)
		}
	}
}

func TestWrongTypeParsers(t *testing.T) {
	pb := AppendProbe(nil, Probe{}, false)
	if _, err := ParseData(pb); err == nil {
		t.Error("ParseData on probe should fail")
	}
	db, _ := AppendData(nil, Data{Flow: key()})
	if _, _, err := ParseProbe(db); err == nil {
		t.Error("ParseProbe on data should fail")
	}
	if _, err := ParseResolve(db); err == nil {
		t.Error("ParseResolve on data should fail")
	}
	if _, err := ParseResolveReply(db); err == nil {
		t.Error("ParseResolveReply on data should fail")
	}
}

func TestOverhead(t *testing.T) {
	b, err := AppendData(nil, Data{Flow: key(), Payload: make([]byte, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(b)-100 != Overhead() {
		t.Errorf("Overhead() = %d, actual %d", Overhead(), len(b)-100)
	}
	// The paper cites ~16-21 bytes per 1400; our header+flow key should
	// stay comparable.
	if Overhead() > 32 {
		t.Errorf("encapsulation overhead %d bytes too large", Overhead())
	}
}
