// Package tmproto defines the Traffic Manager wire protocol spoken
// between TM-Edges and TM-PoPs over UDP tunnels (§3.2, Appendix D):
// encapsulated client packets, keepalive probes used for RTT estimation
// and failure detection, and the control messages a TM-Edge uses to
// resolve the set of available tunnel destinations.
//
// All messages share a fixed 8-byte header. Encoding is big-endian.
// Decoding is zero-copy: payload accessors return sub-slices of the
// input buffer.
package tmproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Magic identifies Traffic Manager datagrams.
const Magic uint16 = 0x5041 // "PA"

// Version is the protocol version.
const Version uint8 = 1

// MsgType discriminates datagram contents.
type MsgType uint8

// Message types.
const (
	// TypeData carries an encapsulated client packet.
	TypeData MsgType = 1
	// TypeProbe is an edge→PoP keepalive/RTT probe.
	TypeProbe MsgType = 2
	// TypeProbeReply echoes a probe back.
	TypeProbeReply MsgType = 3
	// TypeResolve asks a TM-PoP for the available destination set for a
	// service.
	TypeResolve MsgType = 4
	// TypeResolveReply lists available destinations.
	TypeResolveReply MsgType = 5
)

func (t MsgType) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeProbe:
		return "PROBE"
	case TypeProbeReply:
		return "PROBE-REPLY"
	case TypeResolve:
		return "RESOLVE"
	case TypeResolveReply:
		return "RESOLVE-REPLY"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// headerLen is the fixed header size: magic(2) version(1) type(1)
// flags(4). The flags word was reserved-zero through protocol
// version 1 PR 3; bit 0 now marks an optional trace-context block.
const headerLen = 8

// flagTrace marks a 16-byte TraceContext block inserted directly after
// the header, before the type-specific body. Decoders that predate the
// flag reject flagged datagrams on length/shape grounds rather than
// misreading them, and MakeReply (a type-byte flip) echoes the block
// untouched — which is exactly how edge→pop→edge probe round trips
// stitch into one trace with zero PoP-side work.
const flagTrace uint32 = 1 << 0

// traceLen is TraceID(8) + SpanID(8).
const traceLen = 16

// TraceContext carries span identity (see internal/obs/span) across
// the tunnel so both tunnel ends record into one causal trace. The
// zero value means "no trace" and costs nothing on the wire.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a span. The span ID stream
// never emits zero, so a half-zero context is treated as absent (and
// normalized to the zero value on parse, preserving the append/parse
// round-trip property).
func (c TraceContext) Valid() bool { return c.TraceID != 0 && c.SpanID != 0 }

// Codec errors.
var (
	ErrTooShort   = errors.New("tmproto: datagram too short")
	ErrBadMagic   = errors.New("tmproto: bad magic")
	ErrBadVersion = errors.New("tmproto: unsupported version")
	ErrBadType    = errors.New("tmproto: unknown message type")
)

// putHeader writes the common header.
func putHeader(dst []byte, t MsgType) {
	binary.BigEndian.PutUint16(dst[0:2], Magic)
	dst[2] = Version
	dst[3] = uint8(t)
	binary.BigEndian.PutUint32(dst[4:8], 0)
}

// appendHeader appends the header plus, when tc is valid, the flagged
// trace block; it returns the updated slice.
func appendHeader(dst []byte, t MsgType, tc TraceContext) []byte {
	off := len(dst)
	n := headerLen
	if tc.Valid() {
		n += traceLen
	}
	dst = append(dst, make([]byte, n)...)
	putHeader(dst[off:], t)
	if tc.Valid() {
		binary.BigEndian.PutUint32(dst[off+4:off+8], flagTrace)
		binary.BigEndian.PutUint64(dst[off+headerLen:], tc.TraceID)
		binary.BigEndian.PutUint64(dst[off+headerLen+8:], tc.SpanID)
	}
	return dst
}

// parseTrace returns the trace context (zero when absent) and the
// offset where the type-specific body begins. The caller must already
// have validated the header via PeekType.
func parseTrace(b []byte) (TraceContext, int, error) {
	if binary.BigEndian.Uint32(b[4:8])&flagTrace == 0 {
		return TraceContext{}, headerLen, nil
	}
	if len(b) < headerLen+traceLen {
		return TraceContext{}, 0, ErrTooShort
	}
	tc := TraceContext{
		TraceID: binary.BigEndian.Uint64(b[headerLen:]),
		SpanID:  binary.BigEndian.Uint64(b[headerLen+8:]),
	}
	if !tc.Valid() {
		tc = TraceContext{} // half-zero contexts normalize to absent
	}
	return tc, headerLen + traceLen, nil
}

// PeekType validates the header and returns the message type.
func PeekType(b []byte) (MsgType, error) {
	if len(b) < headerLen {
		return 0, ErrTooShort
	}
	if binary.BigEndian.Uint16(b[0:2]) != Magic {
		return 0, ErrBadMagic
	}
	if b[2] != Version {
		return 0, ErrBadVersion
	}
	t := MsgType(b[3])
	if t < TypeData || t > TypeResolveReply {
		return 0, ErrBadType
	}
	return t, nil
}

// FlowKey is the inner 5-tuple the TM-PoP uses for its Known Flows NAT
// table (Appendix D).
type FlowKey struct {
	Proto    uint8
	Src, Dst netip.Addr // IPv4
	SrcPort  uint16
	DstPort  uint16
}

// flowKeyLen is proto(1) src(4) dst(4) sport(2) dport(2).
const flowKeyLen = 13

// Valid reports whether the key is well-formed (IPv4 addresses).
func (k FlowKey) Valid() bool { return k.Src.Is4() && k.Dst.Is4() }

func (k FlowKey) String() string {
	return fmt.Sprintf("%d:%s:%d->%s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

func (k FlowKey) marshal(dst []byte) {
	dst[0] = k.Proto
	src := k.Src.As4()
	copy(dst[1:5], src[:])
	d := k.Dst.As4()
	copy(dst[5:9], d[:])
	binary.BigEndian.PutUint16(dst[9:11], k.SrcPort)
	binary.BigEndian.PutUint16(dst[11:13], k.DstPort)
}

func parseFlowKey(b []byte) (FlowKey, error) {
	if len(b) < flowKeyLen {
		return FlowKey{}, ErrTooShort
	}
	return FlowKey{
		Proto:   b[0],
		Src:     netip.AddrFrom4([4]byte(b[1:5])),
		Dst:     netip.AddrFrom4([4]byte(b[5:9])),
		SrcPort: binary.BigEndian.Uint16(b[9:11]),
		DstPort: binary.BigEndian.Uint16(b[11:13]),
	}, nil
}

// Data is an encapsulated client packet. Trace, when valid, rides the
// wire as the flagged trace block — the edge sets it on the first
// packet after a re-pin so the PoP's flow re-home stitches into the
// failover trace.
type Data struct {
	Flow    FlowKey
	Payload []byte // zero-copy view on decode
	Trace   TraceContext
}

// AppendData serializes a data message, appending to dst.
func AppendData(dst []byte, d Data) ([]byte, error) {
	if !d.Flow.Valid() {
		return nil, fmt.Errorf("tmproto: invalid flow key %v", d.Flow)
	}
	dst = appendHeader(dst, TypeData, d.Trace)
	dst = append(dst, make([]byte, flowKeyLen)...)
	d.Flow.marshal(dst[len(dst)-flowKeyLen:])
	return append(dst, d.Payload...), nil
}

// ParseData decodes a TypeData datagram (header included).
func ParseData(b []byte) (Data, error) {
	t, err := PeekType(b)
	if err != nil {
		return Data{}, err
	}
	if t != TypeData {
		return Data{}, fmt.Errorf("tmproto: expected DATA, got %v", t)
	}
	tc, body, err := parseTrace(b)
	if err != nil {
		return Data{}, err
	}
	fk, err := parseFlowKey(b[body:])
	if err != nil {
		return Data{}, err
	}
	return Data{Flow: fk, Payload: b[body+flowKeyLen:], Trace: tc}, nil
}

// Probe is a keepalive/RTT probe. The edge stamps SentUnixNano; the PoP
// echoes the message unchanged apart from flipping the type, so the
// edge computes RTT on reply receipt without any clock agreement. A
// valid Trace rides the flagged trace block and is echoed back with
// the rest of the datagram, stitching the PoP into the probe's trace.
type Probe struct {
	Seq          uint32
	SentUnixNano int64
	Trace        TraceContext
}

const probeBodyLen = 12

// AppendProbe serializes a probe (or probe reply when reply is true).
func AppendProbe(dst []byte, p Probe, reply bool) []byte {
	t := TypeProbe
	if reply {
		t = TypeProbeReply
	}
	dst = appendHeader(dst, t, p.Trace)
	off := len(dst)
	dst = append(dst, make([]byte, probeBodyLen)...)
	binary.BigEndian.PutUint32(dst[off:], p.Seq)
	binary.BigEndian.PutUint64(dst[off+4:], uint64(p.SentUnixNano))
	return dst
}

// ParseProbe decodes a probe or probe reply.
func ParseProbe(b []byte) (Probe, bool, error) {
	t, err := PeekType(b)
	if err != nil {
		return Probe{}, false, err
	}
	if t != TypeProbe && t != TypeProbeReply {
		return Probe{}, false, fmt.Errorf("tmproto: expected PROBE(-REPLY), got %v", t)
	}
	tc, body, err := parseTrace(b)
	if err != nil {
		return Probe{}, false, err
	}
	if len(b) < body+probeBodyLen {
		return Probe{}, false, ErrTooShort
	}
	return Probe{
		Seq:          binary.BigEndian.Uint32(b[body:]),
		SentUnixNano: int64(binary.BigEndian.Uint64(b[body+4:])),
		Trace:        tc,
	}, t == TypeProbeReply, nil
}

// MakeReply converts a received probe datagram into its reply in place
// (the only change is the type byte), returning the same slice.
func MakeReply(b []byte) ([]byte, error) {
	t, err := PeekType(b)
	if err != nil {
		return nil, err
	}
	if t != TypeProbe {
		return nil, fmt.Errorf("tmproto: MakeReply on %v", t)
	}
	b[3] = uint8(TypeProbeReply)
	return b, nil
}

// Destination is one tunnel destination a TM-PoP advertises: an address
// in one of the PAINTER prefixes plus the PoP that terminates it.
type Destination struct {
	Addr netip.Addr // IPv4 tunnel address
	Port uint16
	PoP  uint32
	// Anycast marks the always-available anycast destination.
	Anycast bool
	// GRE asks the edge to speak the GRE wire mode to this destination
	// (see gre.go). Absent ⇒ native framing.
	GRE bool
}

// Destination flag bits (the trailing byte of each wire record; the
// byte was 0/1 for anycast through PR 9, so bit 0 keeps that meaning).
const (
	destFlagAnycast = 1 << 0
	destFlagGRE     = 1 << 1
)

const destLen = 4 + 2 + 4 + 1

// Resolve asks for the destination set of a service.
type Resolve struct {
	Service string
}

// AppendResolve serializes a resolve request.
func AppendResolve(dst []byte, r Resolve) ([]byte, error) {
	if len(r.Service) > 255 {
		return nil, fmt.Errorf("tmproto: service name too long (%d)", len(r.Service))
	}
	off := len(dst)
	dst = append(dst, make([]byte, headerLen+1)...)
	putHeader(dst[off:], TypeResolve)
	dst[off+headerLen] = uint8(len(r.Service))
	return append(dst, r.Service...), nil
}

// ParseResolve decodes a resolve request.
func ParseResolve(b []byte) (Resolve, error) {
	t, err := PeekType(b)
	if err != nil {
		return Resolve{}, err
	}
	if t != TypeResolve {
		return Resolve{}, fmt.Errorf("tmproto: expected RESOLVE, got %v", t)
	}
	// Control messages accept (and skip) the trace block so the flag is
	// uniform across types, but never carry one themselves.
	_, body, err := parseTrace(b)
	if err != nil {
		return Resolve{}, err
	}
	if len(b) < body+1 {
		return Resolve{}, ErrTooShort
	}
	n := int(b[body])
	if len(b) < body+1+n {
		return Resolve{}, ErrTooShort
	}
	return Resolve{Service: string(b[body+1 : body+1+n])}, nil
}

// ResolveReply lists destinations.
type ResolveReply struct {
	Service      string
	Destinations []Destination
}

// AppendResolveReply serializes a resolve reply.
func AppendResolveReply(dst []byte, r ResolveReply) ([]byte, error) {
	if len(r.Service) > 255 {
		return nil, fmt.Errorf("tmproto: service name too long")
	}
	if len(r.Destinations) > 65535 {
		return nil, fmt.Errorf("tmproto: too many destinations")
	}
	off := len(dst)
	dst = append(dst, make([]byte, headerLen+1)...)
	putHeader(dst[off:], TypeResolveReply)
	dst[off+headerLen] = uint8(len(r.Service))
	dst = append(dst, r.Service...)
	var cnt [2]byte
	binary.BigEndian.PutUint16(cnt[:], uint16(len(r.Destinations)))
	dst = append(dst, cnt[:]...)
	for _, d := range r.Destinations {
		if !d.Addr.Is4() {
			return nil, fmt.Errorf("tmproto: destination %v not IPv4", d.Addr)
		}
		var buf [destLen]byte
		a := d.Addr.As4()
		copy(buf[0:4], a[:])
		binary.BigEndian.PutUint16(buf[4:6], d.Port)
		binary.BigEndian.PutUint32(buf[6:10], d.PoP)
		if d.Anycast {
			buf[10] |= destFlagAnycast
		}
		if d.GRE {
			buf[10] |= destFlagGRE
		}
		dst = append(dst, buf[:]...)
	}
	return dst, nil
}

// ParseResolveReply decodes a resolve reply.
func ParseResolveReply(b []byte) (ResolveReply, error) {
	t, err := PeekType(b)
	if err != nil {
		return ResolveReply{}, err
	}
	if t != TypeResolveReply {
		return ResolveReply{}, fmt.Errorf("tmproto: expected RESOLVE-REPLY, got %v", t)
	}
	_, body, err := parseTrace(b)
	if err != nil {
		return ResolveReply{}, err
	}
	if len(b) < body+1 {
		return ResolveReply{}, ErrTooShort
	}
	n := int(b[body])
	p := body + 1
	if len(b) < p+n+2 {
		return ResolveReply{}, ErrTooShort
	}
	out := ResolveReply{Service: string(b[p : p+n])}
	p += n
	cnt := int(binary.BigEndian.Uint16(b[p : p+2]))
	p += 2
	if len(b) < p+cnt*destLen {
		return ResolveReply{}, ErrTooShort
	}
	for i := 0; i < cnt; i++ {
		q := p + i*destLen
		out.Destinations = append(out.Destinations, Destination{
			Addr:    netip.AddrFrom4([4]byte(b[q : q+4])),
			Port:    binary.BigEndian.Uint16(b[q+4 : q+6]),
			PoP:     binary.BigEndian.Uint32(b[q+6 : q+10]),
			Anycast: b[q+10]&destFlagAnycast != 0,
			GRE:     b[q+10]&destFlagGRE != 0,
		})
	}
	return out, nil
}

// Overhead returns the encapsulation overhead in bytes for a data
// packet — the "16 bytes per 1400" cost discussed in Appendix D plus
// the flow key.
func Overhead() int { return headerLen + flowKeyLen }
