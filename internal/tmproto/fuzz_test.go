package tmproto

// Fuzz targets for the tunnel wire protocol: no decoder may panic on
// arbitrary datagrams, and every successfully parsed message must
// survive an append/parse round trip unchanged (the property TM-Edge
// and TM-PoP rely on when they re-serialize replies).

import (
	"bytes"
	"net/netip"
	"testing"
)

func fuzzSeedCorpus(f *testing.F) {
	fl := FlowKey{
		Proto:   17,
		Src:     netip.MustParseAddr("10.1.2.3"),
		Dst:     netip.MustParseAddr("192.0.2.7"),
		SrcPort: 40000, DstPort: 443,
	}
	if d, err := AppendData(nil, Data{Flow: fl, Payload: []byte("payload")}); err == nil {
		f.Add(d)
	}
	f.Add(AppendProbe(nil, Probe{Seq: 7, SentUnixNano: 123456789}, false))
	f.Add(AppendProbe(nil, Probe{Seq: 9, SentUnixNano: 42}, true))
	if r, err := AppendResolve(nil, Resolve{Service: "web"}); err == nil {
		f.Add(r)
	}
	if rr, err := AppendResolveReply(nil, ResolveReply{
		Service: "web",
		Destinations: []Destination{
			{Addr: netip.MustParseAddr("198.51.100.1"), Port: 4000, PoP: 3},
			{Addr: netip.MustParseAddr("198.51.100.2"), Port: 4001, PoP: 4, Anycast: true},
		},
	}); err == nil {
		f.Add(rr)
	}
	// Trace-flagged variants: the optional 16-byte trace-context block.
	tc := TraceContext{TraceID: 0xdeadbeefcafef00d, SpanID: 0x0123456789abcdef}
	if d, err := AppendData(nil, Data{Flow: fl, Payload: []byte("traced"), Trace: tc}); err == nil {
		f.Add(d)
	}
	f.Add(AppendProbe(nil, Probe{Seq: 11, SentUnixNano: 99, Trace: tc}, false))
	// Flag set but block truncated / half-zero.
	f.Add([]byte{0x50, 0x41, 0x01, 0x02, 0x00, 0x00, 0x00, 0x01, 0x00})
	f.Add(AppendProbe(nil, Probe{Seq: 12, Trace: TraceContext{TraceID: 5}}, false))
	// Truncations and garbage.
	f.Add([]byte{})
	f.Add([]byte{0x50})
	f.Add([]byte{0x50, 0x41, 0x01})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
}

// FuzzWireDecode throws arbitrary bytes at every decoder and checks the
// round-trip property for whatever parses.
func FuzzWireDecode(f *testing.F) {
	fuzzSeedCorpus(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		if _, err := PeekType(b); err != nil {
			return // malformed header: nothing else may be parseable
		}

		if d, err := ParseData(b); err == nil {
			out, err := AppendData(nil, d)
			if err != nil {
				t.Fatalf("parsed Data does not re-serialize: %v", err)
			}
			d2, err := ParseData(out)
			if err != nil {
				t.Fatalf("re-serialized Data does not parse: %v", err)
			}
			if d2.Flow != d.Flow || !bytes.Equal(d2.Payload, d.Payload) {
				t.Fatalf("Data round trip changed: %+v -> %+v", d, d2)
			}
		}

		if p, reply, err := ParseProbe(b); err == nil {
			out := AppendProbe(nil, p, reply)
			p2, reply2, err := ParseProbe(out)
			if err != nil || p2 != p || reply2 != reply {
				t.Fatalf("Probe round trip changed: %+v/%v -> %+v/%v (%v)", p, reply, p2, reply2, err)
			}
			if !reply {
				// MakeReply must flip the type in place and re-parse.
				r, err := MakeReply(out)
				if err != nil {
					t.Fatalf("MakeReply on valid probe: %v", err)
				}
				pr, isReply, err := ParseProbe(r)
				if err != nil || !isReply || pr != p {
					t.Fatalf("MakeReply round trip: %+v/%v (%v)", pr, isReply, err)
				}
			}
		}

		if r, err := ParseResolve(b); err == nil {
			out, err := AppendResolve(nil, r)
			if err != nil {
				t.Fatalf("parsed Resolve does not re-serialize: %v", err)
			}
			r2, err := ParseResolve(out)
			if err != nil || r2 != r {
				t.Fatalf("Resolve round trip changed: %+v -> %+v (%v)", r, r2, err)
			}
		}

		if rr, err := ParseResolveReply(b); err == nil {
			out, err := AppendResolveReply(nil, rr)
			if err != nil {
				t.Fatalf("parsed ResolveReply does not re-serialize: %v", err)
			}
			rr2, err := ParseResolveReply(out)
			if err != nil {
				t.Fatalf("re-serialized ResolveReply does not parse: %v", err)
			}
			if rr2.Service != rr.Service || len(rr2.Destinations) != len(rr.Destinations) {
				t.Fatalf("ResolveReply round trip changed: %+v -> %+v", rr, rr2)
			}
			for i := range rr.Destinations {
				if rr2.Destinations[i] != rr.Destinations[i] {
					t.Fatalf("destination %d changed: %+v -> %+v", i, rr.Destinations[i], rr2.Destinations[i])
				}
			}
		}
	})
}
