// Package routeserver implements a small BGP route server: it accepts
// speaker sessions, maintains a RIB from their announcements, applies
// route-flap damping, and exposes a queryable snapshot. In the PAINTER
// deployment story this is the PoP-side route machinery painterd
// installs advertisement configurations into (Fig. 4's "Advertisement
// Installation"); in the evaluation it doubles as the RIS-like
// collector counting churn.
package routeserver

import (
	"fmt"
	"log"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"painter/internal/bgp"
	"painter/internal/obs"
	"painter/internal/obs/span"
)

// Config configures a route server.
type Config struct {
	// ListenAddr is the TCP address to accept BGP sessions on.
	ListenAddr string
	// LocalAS / BGPID identify the server in OPEN messages.
	LocalAS uint16
	BGPID   uint32
	// HoldTime for sessions.
	HoldTime time.Duration
	// Damping, when non-nil, suppresses flapping prefixes.
	Damping *bgp.DampingConfig
	// Logf, when set, receives event logs.
	Logf func(format string, args ...any)
	// Obs, when non-nil, receives route-server metrics (update/withdraw
	// counters, session and flap-damping gauges).
	Obs *obs.Registry
	// Tracer, when non-nil, records one span per update message with
	// child spans for each announce/withdraw decision, including whether
	// flap damping suppressed the announcement. Nil disables tracing.
	Tracer *span.Tracer
}

// Server is a running route server.
type Server struct {
	cfg Config
	ln  net.Listener
	rib *bgp.RIB
	dmp *bgp.Damper

	mu       sync.Mutex
	sessions map[bgp.PeerID]*session
	nextPeer uint32

	updates    atomic.Uint64
	withdraws  atomic.Uint64
	suppressed atomic.Uint64

	m rsMetrics

	wg     sync.WaitGroup
	closed chan struct{}
}

// rsMetrics bundles the route server's obs handles (nil-safe).
type rsMetrics struct {
	updates    *obs.Counter
	withdraws  *obs.Counter
	suppressed *obs.Counter
	sessionsUp *obs.Counter
}

func newRSMetrics(r *obs.Registry, s *Server) rsMetrics {
	if r == nil {
		return rsMetrics{}
	}
	m := rsMetrics{
		updates:    r.Counter("routeserver_updates_total", "NLRI announcements received"),
		withdraws:  r.Counter("routeserver_withdraws_total", "prefix withdrawals received"),
		suppressed: r.Counter("routeserver_suppressed_total", "announcements suppressed by flap damping"),
		sessionsUp: r.Counter("routeserver_sessions_opened_total", "BGP sessions accepted"),
	}
	r.GaugeFunc("routeserver_sessions", "live BGP sessions", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.sessions))
	})
	r.GaugeFunc("routeserver_rib_prefixes", "prefixes in the RIB", func() float64 {
		return float64(s.rib.Size())
	})
	if s.dmp != nil {
		r.GaugeFunc("routeserver_damped_prefixes", "prefixes currently suppressed by flap damping", func() float64 {
			return float64(s.dmp.SuppressedCount())
		})
	}
	return m
}

type session struct {
	id      bgp.PeerID
	speaker *bgp.Speaker
	remote  string
}

// New starts a route server.
func New(cfg Config) (*Server, error) {
	if cfg.HoldTime <= 0 {
		cfg.HoldTime = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("routeserver: listen: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		rib:      bgp.NewRIB(nil),
		sessions: make(map[bgp.PeerID]*session),
		closed:   make(chan struct{}),
	}
	if cfg.Damping != nil {
		s.dmp = bgp.NewDamper(*cfg.Damping, nil)
	}
	s.m = newRSMetrics(cfg.Obs, s)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// RIB returns the server's RIB (live; safe for concurrent reads).
func (s *Server) RIB() *bgp.RIB { return s.rib }

// Stats is a counters snapshot.
type Stats struct {
	Sessions            int
	Updates, Withdraws  uint64
	SuppressedAnnounces uint64
	Prefixes            int
}

// Stats returns current counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	return Stats{
		Sessions:            n,
		Updates:             s.updates.Load(),
		Withdraws:           s.withdraws.Load(),
		SuppressedAnnounces: s.suppressed.Load(),
		Prefixes:            s.rib.Size(),
	}
}

// Suppressed reports whether damping currently suppresses a prefix.
func (s *Server) Suppressed(p netip.Prefix) bool {
	return s.dmp != nil && s.dmp.Suppressed(p)
}

// Close stops the server and all sessions.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.ln.Close()
	s.mu.Lock()
	for _, sess := range s.sessions {
		_ = sess.speaker.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

func (s *Server) serve(conn net.Conn) {
	sp := bgp.NewSpeaker(conn, s.cfg.LocalAS, s.cfg.BGPID, s.cfg.HoldTime)
	if err := sp.Handshake(); err != nil {
		s.cfg.Logf("routeserver: handshake with %s failed: %v", conn.RemoteAddr(), err)
		_ = conn.Close()
		return
	}
	s.mu.Lock()
	s.nextPeer++
	id := bgp.PeerID(s.nextPeer)
	sess := &session{id: id, speaker: sp, remote: conn.RemoteAddr().String()}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.m.sessionsUp.Inc()
	s.cfg.Logf("routeserver: session %d up with AS%d (%s)", id, sp.PeerOpen.AS, sess.remote)

	sp.OnUpdate = func(u bgp.Update) { s.handleUpdate(id, sp.PeerOpen.AS, u) }
	err := sp.Run()
	s.cfg.Logf("routeserver: session %d down (%v)", id, err)
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
	s.rib.DropPeer(id)
	_ = sp.Close()
}

func (s *Server) handleUpdate(peer bgp.PeerID, peerAS uint16, u bgp.Update) {
	var us *span.Span
	if s.cfg.Tracer != nil {
		us = s.cfg.Tracer.StartRoot("routeserver.update",
			span.A("peer", fmt.Sprintf("%d", peer)),
			span.A("peer_as", fmt.Sprintf("%d", peerAS)),
			span.A("nlri", fmt.Sprintf("%d", len(u.NLRI))),
			span.A("withdrawn", fmt.Sprintf("%d", len(u.Withdrawn))))
		defer us.Finish()
	}
	for _, p := range u.Withdrawn {
		s.withdraws.Add(1)
		s.m.withdraws.Inc()
		if s.dmp != nil {
			s.dmp.OnWithdraw(p)
		}
		s.rib.Withdraw(peer, p)
		if us != nil {
			ws := us.StartChild("routeserver.withdraw", span.A("prefix", p.String()))
			ws.Finish()
		}
	}
	for _, p := range u.NLRI {
		s.updates.Add(1)
		s.m.updates.Inc()
		var as *span.Span
		if us != nil {
			as = us.StartChild("routeserver.announce", span.A("prefix", p.String()))
		}
		if s.dmp != nil {
			s.dmp.OnAttrChange(p)
			if s.dmp.Suppressed(p) {
				s.suppressed.Add(1)
				s.m.suppressed.Inc()
				if as != nil {
					as.SetAttr("damped", "true")
					as.Finish()
				}
				continue
			}
		}
		if as != nil {
			as.SetAttr("damped", "false")
			as.Finish()
		}
		s.rib.Learn(bgp.RIBEntry{
			Peer:      peer,
			Prefix:    p,
			ASPath:    append([]uint16{peerAS}, u.ASPath...),
			NextHop:   u.NextHop,
			LocalPref: u.LocalPref,
			MED:       u.MED,
			Origin:    u.Origin,
		})
	}
}

// LogfStd adapts the standard logger for Config.Logf.
func LogfStd(format string, args ...any) { log.Printf(format, args...) }
