package routeserver

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"painter/internal/bgp"
)

func startServer(t *testing.T, damping *bgp.DampingConfig) *Server {
	t.Helper()
	s, err := New(Config{
		ListenAddr: "127.0.0.1:0",
		LocalAS:    64999,
		BGPID:      0x0a00f311,
		HoldTime:   5 * time.Second,
		Damping:    damping,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialSpeaker(t *testing.T, addr string, as uint16) *bgp.Speaker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	sp := bgp.NewSpeaker(conn, as, uint32(as), 5*time.Second)
	if err := sp.Handshake(); err != nil {
		t.Fatal(err)
	}
	go func() { _ = sp.Run() }()
	t.Cleanup(func() { sp.Close() })
	return sp
}

func announce(t *testing.T, sp *bgp.Speaker, prefix string, path ...uint16) {
	t.Helper()
	err := sp.SendUpdate(bgp.Update{
		Origin:  bgp.OriginIGP,
		ASPath:  path,
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netip.Prefix{netip.MustParsePrefix(prefix)},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestServerLearnsRoutes(t *testing.T) {
	s := startServer(t, nil)
	sp := dialSpeaker(t, s.Addr(), 64500)
	announce(t, sp, "10.0.0.0/24", 64500)
	announce(t, sp, "10.0.1.0/24", 64500)
	waitFor(t, func() bool { return s.RIB().Size() == 2 }, "RIB did not learn 2 prefixes")
	best, ok := s.RIB().Best(netip.MustParsePrefix("10.0.0.0/24"))
	if !ok {
		t.Fatal("prefix missing")
	}
	// The server prepends the session's AS to the path.
	if len(best.ASPath) != 2 || best.ASPath[0] != 64500 {
		t.Errorf("AS path = %v", best.ASPath)
	}
}

func TestServerWithdrawAndSessionDrop(t *testing.T) {
	s := startServer(t, nil)
	sp := dialSpeaker(t, s.Addr(), 64500)
	announce(t, sp, "10.0.0.0/24", 64500)
	waitFor(t, func() bool { return s.RIB().Size() == 1 }, "not learned")

	if err := sp.SendUpdate(bgp.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.RIB().Size() == 0 }, "withdraw not applied")

	announce(t, sp, "10.0.1.0/24", 64500)
	waitFor(t, func() bool { return s.RIB().Size() == 1 }, "re-announce not applied")
	_ = sp.Close()
	waitFor(t, func() bool { return s.RIB().Size() == 0 }, "session drop should flush routes")
}

func TestServerBestPathAcrossPeers(t *testing.T) {
	s := startServer(t, nil)
	a := dialSpeaker(t, s.Addr(), 64500)
	b := dialSpeaker(t, s.Addr(), 64501)
	announce(t, a, "10.0.0.0/24", 64500, 65000, 65001) // longer path
	announce(t, b, "10.0.0.0/24", 64501)               // shorter path
	waitFor(t, func() bool {
		best, ok := s.RIB().Best(netip.MustParsePrefix("10.0.0.0/24"))
		return ok && len(best.ASPath) == 2 && best.ASPath[0] == 64501
	}, "decision process did not pick the shorter path")
	if st := s.Stats(); st.Sessions != 2 || st.Updates < 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestServerDampingSuppressesFlapper(t *testing.T) {
	cfg := bgp.DefaultDampingConfig()
	s := startServer(t, &cfg)
	sp := dialSpeaker(t, s.Addr(), 64500)
	p := "10.0.0.0/24"
	// Flap hard: announce/withdraw repeatedly.
	for i := 0; i < 4; i++ {
		announce(t, sp, p, 64500)
		if err := sp.SendUpdate(bgp.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix(p)}}); err != nil {
			t.Fatal(err)
		}
	}
	announce(t, sp, p, 64500)
	waitFor(t, func() bool { return s.Stats().SuppressedAnnounces > 0 },
		"flapping prefix was never suppressed")
	if !s.Suppressed(netip.MustParsePrefix(p)) {
		t.Error("prefix should be suppressed")
	}
	// A well-behaved prefix is unaffected.
	announce(t, sp, "10.9.0.0/24", 64500)
	waitFor(t, func() bool {
		_, ok := s.RIB().Best(netip.MustParsePrefix("10.9.0.0/24"))
		return ok
	}, "stable prefix should be accepted")
}
