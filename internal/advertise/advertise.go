// Package advertise defines advertisement configurations — assignments
// of BGP prefixes to subsets of cloud peerings — and the baseline
// strategies PAINTER is compared against in §5.1.2: Anycast, Regional,
// One per PoP (with and without prefix reuse), and One per Peering.
package advertise

import (
	"fmt"
	"sort"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/geo"
)

// Config is an advertisement configuration: Prefixes[i] is the set of
// peerings prefix i is advertised over. The anycast prefix is implicit
// and always advertised via all peerings (§3: "Azure still advertises
// the anycast prefix"); configs describe only the additional PAINTER/
// baseline prefixes.
type Config struct {
	Prefixes [][]bgp.IngressID
}

// NumPrefixes returns how many (non-anycast) prefixes the config uses.
func (c Config) NumPrefixes() int { return len(c.Prefixes) }

// Clone deep-copies the config.
func (c Config) Clone() Config {
	out := Config{Prefixes: make([][]bgp.IngressID, len(c.Prefixes))}
	for i, s := range c.Prefixes {
		out.Prefixes[i] = append([]bgp.IngressID(nil), s...)
	}
	return out
}

// Validate checks that every peering exists in the deployment, no prefix
// is empty, and no prefix lists a peering twice.
func (c Config) Validate(d *cloud.Deployment) error {
	for i, s := range c.Prefixes {
		if len(s) == 0 {
			return fmt.Errorf("advertise: prefix %d has no peerings", i)
		}
		seen := make(map[bgp.IngressID]bool, len(s))
		for _, id := range s {
			if d.Peering(id) == nil {
				return fmt.Errorf("advertise: prefix %d references unknown peering %d", i, id)
			}
			if seen[id] {
				return fmt.Errorf("advertise: prefix %d lists peering %d twice", i, id)
			}
			seen[id] = true
		}
	}
	return nil
}

// TotalAdvertisements returns the number of (peering, prefix) pairs —
// the BGP table footprint knob the paper minimizes.
func (c Config) TotalAdvertisements() int {
	n := 0
	for _, s := range c.Prefixes {
		n += len(s)
	}
	return n
}

// Strategy names used in experiment output.
const (
	StrategyPainter        = "painter"
	StrategyAnycast        = "anycast"
	StrategyRegional       = "regional"
	StrategyOnePerPoP      = "one-per-pop"
	StrategyOnePerPoPReuse = "one-per-pop-reuse"
	StrategyOnePerPeering  = "one-per-peering"
	StrategySDWAN          = "sd-wan"
)

// Anycast returns the empty config: only the implicit anycast prefix.
func Anycast() Config { return Config{} }

// OnePerPeering advertises a unique prefix via each peering, up to the
// budget. Peerings are consumed round-robin across PoPs so a small
// budget still covers diverse geography (matching how the paper sweeps
// budget for this strategy).
func OnePerPeering(d *cloud.Deployment, budget int) Config {
	order := roundRobinPeerings(d)
	if budget > len(order) {
		budget = len(order)
	}
	cfg := Config{Prefixes: make([][]bgp.IngressID, 0, budget)}
	for _, id := range order[:budget] {
		cfg.Prefixes = append(cfg.Prefixes, []bgp.IngressID{id})
	}
	return cfg
}

// OnePerPoP gives each PoP its own prefix advertised via all peerings at
// that PoP, up to the budget (PoPs in ID order, which Build sorts by
// metro traffic weight).
func OnePerPoP(d *cloud.Deployment, budget int) Config {
	var cfg Config
	for _, pop := range d.PoPs {
		if len(cfg.Prefixes) >= budget {
			break
		}
		ids := d.PeeringsAt(pop.ID)
		if len(ids) == 0 {
			continue
		}
		cfg.Prefixes = append(cfg.Prefixes, append([]bgp.IngressID(nil), ids...))
	}
	return cfg
}

// OnePerPoPWithReuse groups PoPs that are pairwise at least reuseKm
// apart onto shared prefixes (greedy bin packing in PoP ID order), each
// prefix advertised via all peerings at its PoPs, up to the budget.
func OnePerPoPWithReuse(d *cloud.Deployment, budget int, reuseKm float64) Config {
	type bin struct {
		pops []cloud.PoPID
	}
	var bins []bin
	coordOf := func(id cloud.PoPID) geo.Coord { return d.PoP(id).Coord }
	for _, pop := range d.PoPs {
		if len(d.PeeringsAt(pop.ID)) == 0 {
			continue
		}
		placed := false
		for bi := range bins {
			ok := true
			for _, other := range bins[bi].pops {
				if geo.DistanceKm(pop.Coord, coordOf(other)) < reuseKm {
					ok = false
					break
				}
			}
			if ok {
				bins[bi].pops = append(bins[bi].pops, pop.ID)
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, bin{pops: []cloud.PoPID{pop.ID}})
		}
	}
	if budget > len(bins) {
		budget = len(bins)
	}
	cfg := Config{Prefixes: make([][]bgp.IngressID, 0, budget)}
	for _, b := range bins[:budget] {
		var ids []bgp.IngressID
		for _, p := range b.pops {
			ids = append(ids, d.PeeringsAt(p)...)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		cfg.Prefixes = append(cfg.Prefixes, ids)
	}
	return cfg
}

// Regional advertises one prefix per world region via the transit-
// provider peerings at the region's PoPs, mirroring the "regional
// prefixes to transit providers" practice the paper evaluated (and found
// offered little benefit).
func Regional(d *cloud.Deployment) Config {
	byRegion := make(map[geo.Region][]bgp.IngressID)
	for _, pr := range d.Peerings {
		if !pr.IsTransit() {
			continue
		}
		pop := d.PoP(pr.PoP)
		m, err := geo.MetroByCode(pop.Metro)
		if err != nil {
			continue
		}
		byRegion[m.Region] = append(byRegion[m.Region], pr.ID)
	}
	regions := make([]geo.Region, 0, len(byRegion))
	for r := range byRegion {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	var cfg Config
	for _, r := range regions {
		ids := byRegion[r]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		cfg.Prefixes = append(cfg.Prefixes, ids)
	}
	return cfg
}

// roundRobinPeerings interleaves peerings across PoPs: first peering of
// every PoP, then second of every PoP, and so on.
func roundRobinPeerings(d *cloud.Deployment) []bgp.IngressID {
	var out []bgp.IngressID
	maxLen := 0
	perPoP := make([][]bgp.IngressID, 0, len(d.PoPs))
	for _, pop := range d.PoPs {
		ids := d.PeeringsAt(pop.ID)
		perPoP = append(perPoP, ids)
		if len(ids) > maxLen {
			maxLen = len(ids)
		}
	}
	for i := 0; i < maxLen; i++ {
		for _, ids := range perPoP {
			if i < len(ids) {
				out = append(out, ids[i])
			}
		}
	}
	return out
}
