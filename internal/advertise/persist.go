package advertise

import (
	"encoding/json"
	"fmt"
	"os"

	"painter/internal/bgp"
)

// configJSON is the on-disk format: one entry per prefix with its
// peering IDs, versioned so future format changes stay readable.
type configJSON struct {
	Version  int       `json:"version"`
	Prefixes [][]int32 `json:"prefixes"`
}

const persistVersion = 1

// MarshalJSON encodes the configuration.
func (c Config) MarshalJSON() ([]byte, error) {
	out := configJSON{Version: persistVersion, Prefixes: make([][]int32, len(c.Prefixes))}
	for i, s := range c.Prefixes {
		ids := make([]int32, len(s))
		for j, id := range s {
			ids[j] = int32(id)
		}
		out.Prefixes[i] = ids
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the configuration.
func (c *Config) UnmarshalJSON(b []byte) error {
	var in configJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	if in.Version != persistVersion {
		return fmt.Errorf("advertise: unsupported config version %d", in.Version)
	}
	c.Prefixes = make([][]bgp.IngressID, len(in.Prefixes))
	for i, ids := range in.Prefixes {
		s := make([]bgp.IngressID, len(ids))
		for j, id := range ids {
			if id < 0 {
				return fmt.Errorf("advertise: prefix %d has negative peering id %d", i, id)
			}
			s[j] = bgp.IngressID(id)
		}
		c.Prefixes[i] = s
	}
	return nil
}

// Save writes the configuration to a file (0644).
func (c Config) Save(path string) error {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads a configuration from a file.
func Load(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var c Config
	if err := json.Unmarshal(b, &c); err != nil {
		return Config{}, fmt.Errorf("advertise: %s: %w", path, err)
	}
	return c, nil
}
