package advertise

import (
	"os"
	"testing"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/geo"
	"painter/internal/topology"
)

func testDeploy(t *testing.T) *cloud.Deployment {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: 8, Tier1: 4, Tier2: 25, Stubs: 150,
		MeanStubProviders: 2.3, Tier2PeerProb: 0.3, EnterpriseFrac: 0.35, ContentFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cloud.Build(g, 64500, cloud.Profile{Name: "t", PoPMetros: 10, PeerFrac: 0.8, TransitProviders: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAnycastEmpty(t *testing.T) {
	c := Anycast()
	if c.NumPrefixes() != 0 || c.TotalAdvertisements() != 0 {
		t.Error("anycast config must be empty")
	}
}

func TestOnePerPeering(t *testing.T) {
	d := testDeploy(t)
	all := len(d.AllPeeringIDs())
	c := OnePerPeering(d, 5)
	if c.NumPrefixes() != 5 {
		t.Fatalf("prefixes = %d, want 5", c.NumPrefixes())
	}
	seen := map[bgp.IngressID]bool{}
	pops := map[cloud.PoPID]bool{}
	for _, s := range c.Prefixes {
		if len(s) != 1 {
			t.Fatalf("one-per-peering prefix has %d peerings", len(s))
		}
		if seen[s[0]] {
			t.Fatalf("peering %d reused", s[0])
		}
		seen[s[0]] = true
		pops[d.Peering(s[0]).PoP] = true
	}
	// Round-robin should touch multiple PoPs even at small budget.
	if len(pops) < 2 {
		t.Error("small budget should still cover multiple PoPs (round robin)")
	}
	// Over-budget clamps.
	c = OnePerPeering(d, all+100)
	if c.NumPrefixes() != all {
		t.Errorf("over-budget = %d prefixes, want %d", c.NumPrefixes(), all)
	}
	if err := c.Validate(d); err != nil {
		t.Error(err)
	}
}

func TestOnePerPoP(t *testing.T) {
	d := testDeploy(t)
	c := OnePerPoP(d, 3)
	if c.NumPrefixes() != 3 {
		t.Fatalf("prefixes = %d, want 3", c.NumPrefixes())
	}
	for _, s := range c.Prefixes {
		// All peerings in one prefix must share a PoP and cover it fully.
		pop := d.Peering(s[0]).PoP
		for _, id := range s {
			if d.Peering(id).PoP != pop {
				t.Fatal("one-per-pop prefix spans PoPs")
			}
		}
		if len(s) != len(d.PeeringsAt(pop)) {
			t.Errorf("prefix covers %d of %d peerings at PoP %d", len(s), len(d.PeeringsAt(pop)), pop)
		}
	}
	if err := c.Validate(d); err != nil {
		t.Error(err)
	}
	full := OnePerPoP(d, 10000)
	if full.NumPrefixes() != len(d.PoPs) {
		t.Errorf("full one-per-pop = %d prefixes, want %d", full.NumPrefixes(), len(d.PoPs))
	}
}

func TestOnePerPoPWithReuse(t *testing.T) {
	d := testDeploy(t)
	const reuseKm = 3000
	c := OnePerPoPWithReuse(d, 10000, reuseKm)
	full := OnePerPoP(d, 10000)
	if c.NumPrefixes() > full.NumPrefixes() {
		t.Errorf("reuse uses %d prefixes, plain uses %d — reuse must not use more",
			c.NumPrefixes(), full.NumPrefixes())
	}
	// Same total advertisements as plain (all PoP peerings covered).
	if c.TotalAdvertisements() != full.TotalAdvertisements() {
		t.Errorf("reuse covers %d advertisements, plain %d",
			c.TotalAdvertisements(), full.TotalAdvertisements())
	}
	// Every pair of PoPs sharing a prefix must be >= reuseKm apart.
	for _, s := range c.Prefixes {
		popSet := map[cloud.PoPID]bool{}
		for _, id := range s {
			popSet[d.Peering(id).PoP] = true
		}
		var pops []cloud.PoPID
		for p := range popSet {
			pops = append(pops, p)
		}
		for i := 0; i < len(pops); i++ {
			for j := i + 1; j < len(pops); j++ {
				a, b := d.PoP(pops[i]), d.PoP(pops[j])
				if dist := geo.DistanceKm(a.Coord, b.Coord); dist < reuseKm {
					t.Errorf("PoPs %s and %s share a prefix but are %.0f km apart (< %d)",
						a.Metro, b.Metro, dist, reuseKm)
				}
			}
		}
	}
	if err := c.Validate(d); err != nil {
		t.Error(err)
	}
}

func TestRegional(t *testing.T) {
	d := testDeploy(t)
	c := Regional(d)
	if c.NumPrefixes() == 0 {
		t.Fatal("regional produced no prefixes")
	}
	for _, s := range c.Prefixes {
		var region geo.Region
		for i, id := range s {
			pr := d.Peering(id)
			if !pr.IsTransit() {
				t.Error("regional must advertise only to transit providers")
			}
			m, err := geo.MetroByCode(d.PoP(pr.PoP).Metro)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				region = m.Region
			} else if m.Region != region {
				t.Error("regional prefix spans regions")
			}
		}
	}
	if err := c.Validate(d); err != nil {
		t.Error(err)
	}
}

func TestConfigValidate(t *testing.T) {
	d := testDeploy(t)
	ok := Config{Prefixes: [][]bgp.IngressID{{0, 1}}}
	if err := ok.Validate(d); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Prefixes: [][]bgp.IngressID{{}}},      // empty prefix
		{Prefixes: [][]bgp.IngressID{{99999}}}, // unknown peering
		{Prefixes: [][]bgp.IngressID{{0, 0}}},  // duplicate
	}
	for i, c := range bad {
		if err := c.Validate(d); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigClone(t *testing.T) {
	c := Config{Prefixes: [][]bgp.IngressID{{1, 2}, {3}}}
	cl := c.Clone()
	cl.Prefixes[0][0] = 99
	if c.Prefixes[0][0] != 1 {
		t.Error("Clone is shallow")
	}
	if c.TotalAdvertisements() != 3 {
		t.Errorf("TotalAdvertisements = %d, want 3", c.TotalAdvertisements())
	}
}

func TestConfigPersistRoundTrip(t *testing.T) {
	d := testDeploy(t)
	orig := OnePerPoPWithReuse(d, 5, 3000)
	path := t.TempDir() + "/config.json"
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPrefixes() != orig.NumPrefixes() {
		t.Fatalf("prefixes = %d, want %d", got.NumPrefixes(), orig.NumPrefixes())
	}
	for i := range orig.Prefixes {
		if len(got.Prefixes[i]) != len(orig.Prefixes[i]) {
			t.Fatalf("prefix %d length differs", i)
		}
		for j := range orig.Prefixes[i] {
			if got.Prefixes[i][j] != orig.Prefixes[i][j] {
				t.Fatalf("prefix %d peering %d differs", i, j)
			}
		}
	}
	if err := got.Validate(d); err != nil {
		t.Errorf("loaded config invalid: %v", err)
	}
}

func TestConfigLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(dir + "/missing.json"); err == nil {
		t.Error("missing file should fail")
	}
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("malformed json should fail")
	}
	wrongVer := dir + "/ver.json"
	if err := os.WriteFile(wrongVer, []byte(`{"version":99,"prefixes":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(wrongVer); err == nil {
		t.Error("unknown version should fail")
	}
	negID := dir + "/neg.json"
	if err := os.WriteFile(negID, []byte(`{"version":1,"prefixes":[[-3]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(negID); err == nil {
		t.Error("negative peering id should fail")
	}
}
