// Package obs is a dependency-free metrics subsystem: atomic counters
// and gauges, a fixed-bucket log-scale histogram with lock-free updates
// and mergeable snapshots, a registry with cheap label sets, and
// Prometheus text-format exposition.
//
// The package is built around a nil-safe no-op default: every
// constructor on a nil *Registry returns a nil metric, and every method
// on a nil metric returns immediately. An instrumented hot path that
// was never wired to a registry therefore costs exactly one predictable
// branch per call — no allocation, no lock, no indirect call.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is a single key=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; a nil *Counter no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. Negative deltas are ignored: counters are monotone.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 metric. The zero value is ready to
// use; a nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// kind discriminates registry entries.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered metric instance (a metric family member: one
// name plus one concrete label set).
type entry struct {
	name   string // family name
	key    string // name + rendered labels; unique per instance
	help   string
	kind   kind
	labels []Label

	counter *Counter
	gauge   *Gauge
	gfn     func() float64
	hist    *Histogram
}

// Registry holds named metrics. A nil *Registry is the no-op default:
// all constructors return nil metrics whose methods no-op.
type Registry struct {
	mu      sync.Mutex
	entries []*entry          // registration order, for stable exposition
	byKey   map[string]*entry // key -> entry
	// base labels are appended to every instance at exposition time
	// (WriteProm, Snapshot); instrumented code never sees them. They
	// scope a whole registry — e.g. tenant="x" on a tenant's world.
	base []Label
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

// renderKey builds the canonical instance key "name{k1="v1",k2="v2"}".
// Labels are sorted by key so permuted label slices address the same
// instance.
func renderKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the existing entry for key, or registers a new one via
// make. It panics when the same key was registered with a different
// metric kind — that is always a programming error.
func (r *Registry) lookup(name, help string, k kind, labels []Label, mk func(*entry)) *entry {
	key := renderKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", key, k, e.kind))
		}
		return e
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	e := &entry{name: name, key: key, help: help, kind: k, labels: ls}
	mk(e)
	r.byKey[key] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter returns (creating if needed) the counter name with the given
// labels. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, labels, func(e *entry) {
		e.counter = &Counter{}
	}).counter
}

// Gauge returns (creating if needed) the gauge name with the given
// labels. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, labels, func(e *entry) {
		e.gauge = &Gauge{}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time. Re-registering the same key replaces fn. No-op on a
// nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	e := r.lookup(name, help, kindGaugeFunc, labels, func(e *entry) {})
	r.mu.Lock()
	e.gfn = fn
	r.mu.Unlock()
}

// Histogram returns (creating if needed) the histogram name with the
// given labels. Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, labels, func(e *entry) {
		e.hist = NewHistogram()
	}).hist
}

// SetBaseLabels sets labels stamped onto every metric instance of this
// registry at exposition time. Instrument registration is unaffected
// (the same entries are returned with or without base labels), so it
// may be called after instruments exist — typically once, right after
// the registry's owner learns its identity. An entry's own label with
// the same key wins over a base label. No-op on a nil registry.
func (r *Registry) SetBaseLabels(labels ...Label) {
	if r == nil {
		return
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	r.mu.Lock()
	r.base = ls
	r.mu.Unlock()
}

// BaseLabels returns a copy of the registry's base labels (nil when
// unset or on a nil registry).
func (r *Registry) BaseLabels() []Label {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.base) == 0 {
		return nil
	}
	out := make([]Label, len(r.base))
	copy(out, r.base)
	return out
}

// exposeLabels merges the registry's base labels with an entry's own
// labels, entry labels winning on key collision.
func (r *Registry) exposeLabels(ls []Label) []Label {
	r.mu.Lock()
	base := r.base
	r.mu.Unlock()
	if len(base) == 0 {
		return ls
	}
	out := make([]Label, 0, len(base)+len(ls))
	for _, b := range base {
		shadowed := false
		for _, l := range ls {
			if l.Key == b.Key {
				shadowed = true
				break
			}
		}
		if !shadowed {
			out = append(out, b)
		}
	}
	return append(out, ls...)
}

// snapshotEntries returns a stable copy of the entry slice.
func (r *Registry) snapshotEntries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, len(r.entries))
	copy(out, r.entries)
	return out
}
