package obs

// Scrape-path tests: ParseText must round-trip exactly what WriteProm
// renders for base-labeled registries (the tenant-labeled exposition
// painterd serves), and DynamicHandler must tolerate the registry set
// churning mid-scrape — the tenant create/delete race `make race`
// targets.

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestParseTextRoundTripBaseLabels(t *testing.T) {
	mk := func(tenant string, events int) *Registry {
		r := NewRegistry()
		r.SetBaseLabels(L("tenant", tenant))
		c := r.Counter("rt_events_total", "Events.")
		for i := 0; i < events; i++ {
			c.Inc()
		}
		r.Gauge("rt_depth", "Depth.", L("shard", "s1")).Set(float64(events) / 2)
		h := r.Histogram("rt_latency_seconds", "Latency.")
		h.Observe(0.25)
		h.Observe(0.75)
		return r
	}
	ra, rb := mk("a", 3), mk("b", 7)

	rec := httptest.NewRecorder()
	Handler(ra, rb).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	samples, err := ParseText(rec.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Every sample the snapshot exposes must come back under the exact
	// merged-label key, with the exact value.
	for tenant, events := range map[string]float64{"a": 3, "b": 7} {
		for key, want := range map[string]float64{
			fmt.Sprintf(`rt_events_total{tenant=%q}`, tenant):                     events,
			fmt.Sprintf(`rt_depth{shard="s1",tenant=%q}`, tenant):                 events / 2,
			fmt.Sprintf(`rt_latency_seconds_count{tenant=%q}`, tenant):            2,
			fmt.Sprintf(`rt_latency_seconds_sum{tenant=%q}`, tenant):              1.0,
			fmt.Sprintf(`rt_latency_seconds_bucket{le="+Inf",tenant=%q}`, tenant): 2,
		} {
			got, ok := samples[key]
			if !ok {
				t.Fatalf("scrape missing %s; have %v", key, SortedKeys(samples))
			}
			if got != want {
				t.Errorf("%s = %v, want %v", key, got, want)
			}
		}
	}
	// The two registries' series must not collide: counts per tenant.
	var a, b int
	for k := range samples {
		if strings.Contains(k, `tenant="a"`) {
			a++
		}
		if strings.Contains(k, `tenant="b"`) {
			b++
		}
	}
	if a == 0 || a != b {
		t.Errorf("per-tenant sample counts diverge: a=%d b=%d", a, b)
	}
}

// TestDynamicHandlerConcurrentChurn scrapes a DynamicHandler while
// tenant registries are created, written to, and deleted concurrently —
// the painterd /metrics surface during reconcile churn. Run under
// -race; every scrape must also stay parseable.
func TestDynamicHandlerConcurrentChurn(t *testing.T) {
	var mu sync.Mutex
	var regs []*Registry
	h := DynamicHandler(func() []*Registry {
		mu.Lock()
		defer mu.Unlock()
		return append([]*Registry(nil), regs...)
	})

	const churns = 50
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // tenant lifecycle: create, instrument, delete
		defer wg.Done()
		for i := 0; i < churns; i++ {
			r := NewRegistry()
			r.SetBaseLabels(L("tenant", fmt.Sprintf("t%d", i)))
			c := r.Counter("churn_events_total", "Events.")
			mu.Lock()
			regs = append(regs, r)
			mu.Unlock()
			for j := 0; j < 20; j++ {
				c.Inc()
				r.Gauge("churn_depth", "Depth.").Set(float64(j))
			}
			mu.Lock()
			regs = regs[1:]
			mu.Unlock()
		}
	}()
	scrapeErr := make(chan error, 1)
	go func() { // scraper
		defer wg.Done()
		for i := 0; i < churns*4; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if _, err := ParseText(rec.Body); err != nil {
				select {
				case scrapeErr <- fmt.Errorf("scrape %d: %w", i, err):
				default:
				}
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}
}
