package alert

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"painter/internal/obs/history"
)

// pushStore builds a hand-fed store whose tick advances with each
// sample round.
type pushStore struct {
	*history.Store
}

func newPushStore() pushStore {
	return pushStore{history.New(history.Config{Capacity: 64, Clock: history.TickClock(0, 1)})}
}

// round pushes one value per series and advances the tick by sampling
// an empty registry set.
func (p pushStore) round(vals map[string]float64) uint64 {
	tick := p.Sample() // no regs: just advances the tick
	for k, v := range vals {
		p.Push(k, v)
	}
	return tick
}

func states(e *Engine) map[string]State {
	out := map[string]State{}
	for _, sv := range e.States() {
		out[sv.Rule+"|"+sv.Series] = sv.State
	}
	return out
}

func TestThresholdLifecycle(t *testing.T) {
	st := newPushStore()
	e := NewEngine(st.Store, []Rule{{
		Name: "hot", Kind: KindThreshold, Series: "load",
		Op: OpGT, Value: 10, For: 2, Window: 1,
	}}, Options{})

	// Below bound: inactive.
	tick := st.round(map[string]float64{"load": 5})
	if trs := e.Eval(tick); len(trs) != 0 {
		t.Fatalf("unexpected transitions: %+v", trs)
	}
	// First breach: pending (For=2 holds it).
	tick = st.round(map[string]float64{"load": 15})
	trs := e.Eval(tick)
	if len(trs) != 1 || trs[0].To != StatePending {
		t.Fatalf("want pending, got %+v", trs)
	}
	// Second consecutive breach: firing.
	tick = st.round(map[string]float64{"load": 20})
	trs = e.Eval(tick)
	if len(trs) != 1 || trs[0].From != StatePending || trs[0].To != StateFiring {
		t.Fatalf("want pending→firing, got %+v", trs)
	}
	// Staying hot: no new transitions.
	tick = st.round(map[string]float64{"load": 30})
	if trs := e.Eval(tick); len(trs) != 0 {
		t.Fatalf("firing must be stable, got %+v", trs)
	}
	// Recovery: resolved, and resolved is sticky.
	tick = st.round(map[string]float64{"load": 1})
	trs = e.Eval(tick)
	if len(trs) != 1 || trs[0].To != StateResolved {
		t.Fatalf("want resolved, got %+v", trs)
	}
	tick = st.round(map[string]float64{"load": 1})
	if trs := e.Eval(tick); len(trs) != 0 {
		t.Fatalf("resolved must be sticky, got %+v", trs)
	}
	// Re-breach from resolved: pending again.
	tick = st.round(map[string]float64{"load": 50})
	trs = e.Eval(tick)
	if len(trs) != 1 || trs[0].From != StateResolved || trs[0].To != StatePending {
		t.Fatalf("want resolved→pending, got %+v", trs)
	}
}

func TestPendingFlapsBackToInactive(t *testing.T) {
	st := newPushStore()
	e := NewEngine(st.Store, []Rule{{
		Name: "hot", Kind: KindThreshold, Series: "load",
		Op: OpGT, Value: 10, For: 3,
	}}, Options{})
	e.Eval(st.round(map[string]float64{"load": 15})) // pending
	trs := e.Eval(st.round(map[string]float64{"load": 5}))
	if len(trs) != 1 || trs[0].From != StatePending || trs[0].To != StateInactive {
		t.Fatalf("want pending→inactive, got %+v", trs)
	}
	// A one-tick blip never fires with For=3.
	if got := states(e)["hot|load"]; got != StateInactive {
		t.Fatalf("state = %s, want inactive", got)
	}
}

func TestForOneFiresImmediately(t *testing.T) {
	st := newPushStore()
	e := NewEngine(st.Store, []Rule{{
		Name: "hot", Kind: KindThreshold, Series: "load", Op: OpGT, Value: 10,
	}}, Options{})
	trs := e.Eval(st.round(map[string]float64{"load": 11}))
	if len(trs) != 2 || trs[0].To != StatePending || trs[1].To != StateFiring {
		t.Fatalf("want pending then firing in one tick, got %+v", trs)
	}
}

func TestAbsenceNeedsAdvancingGate(t *testing.T) {
	st := newPushStore()
	e := NewEngine(st.Store, []Rule{ProbeBlackoutRule(3, 1)}, Options{})
	// Both advancing: healthy.
	sent, recv := 0.0, 0.0
	for i := 0; i < 4; i++ {
		sent += 10
		recv += 10
		if trs := e.Eval(st.round(map[string]float64{
			"tm_edge_probes_sent_total":   sent,
			"tm_edge_probe_replies_total": recv,
		})); len(trs) != 0 {
			t.Fatalf("healthy probes must not alert: %+v", trs)
		}
	}
	// Replies flatline while sends continue: blackout fires.
	var fired bool
	for i := 0; i < 4; i++ {
		sent += 10
		trs := e.Eval(st.round(map[string]float64{
			"tm_edge_probes_sent_total":   sent,
			"tm_edge_probe_replies_total": recv,
		}))
		for _, tr := range trs {
			if tr.To == StateFiring {
				fired = true
			}
		}
	}
	if !fired {
		t.Fatal("blackout never fired")
	}
	// Everything flat (edge idle): must resolve, not keep firing.
	var resolved bool
	for i := 0; i < 4; i++ {
		trs := e.Eval(st.round(map[string]float64{
			"tm_edge_probes_sent_total":   sent,
			"tm_edge_probe_replies_total": recv,
		}))
		for _, tr := range trs {
			if tr.To == StateResolved {
				resolved = true
			}
		}
	}
	if !resolved {
		t.Fatal("idle edge must resolve the blackout")
	}
}

// TestBlackoutIgnoresFailedSends: an edge whose socket writes all fail
// counts SendErrors, not ProbesSent, so the blackout gate
// (tm_edge_probes_sent_total) stays flat and the absence rule must not
// fire — nothing was actually put on the wire, so absent replies carry
// no signal. Pre-fix accounting bumped ProbesSent on failed writes,
// which advanced the gate and produced a false blackout here.
func TestBlackoutIgnoresFailedSends(t *testing.T) {
	st := newPushStore()
	e := NewEngine(st.Store, []Rule{ProbeBlackoutRule(3, 1)}, Options{})
	// Healthy warmup so the rule has history.
	sent, recv, errs := 50.0, 50.0, 0.0
	for i := 0; i < 3; i++ {
		sent += 10
		recv += 10
		if trs := e.Eval(st.round(map[string]float64{
			"tm_edge_probes_sent_total":   sent,
			"tm_edge_probe_replies_total": recv,
			"tm_edge_send_errors_total":   errs,
		})); len(trs) != 0 {
			t.Fatalf("healthy probes must not alert: %+v", trs)
		}
	}
	// Socket breaks: every write fails. With the fixed accounting only
	// send_errors advances; probes_sent and replies both flatline.
	for i := 0; i < 6; i++ {
		errs += 10
		trs := e.Eval(st.round(map[string]float64{
			"tm_edge_probes_sent_total":   sent,
			"tm_edge_probe_replies_total": recv,
			"tm_edge_send_errors_total":   errs,
		}))
		for _, tr := range trs {
			if tr.To == StateFiring {
				t.Fatalf("blackout fired on a flat gate (failed sends must not advance probes_sent): %+v", tr)
			}
		}
	}
	// Socket recovers: sends advance again, replies still absent — now
	// the blackout is real and must fire.
	var fired bool
	for i := 0; i < 6 && !fired; i++ {
		sent += 10
		for _, tr := range e.Eval(st.round(map[string]float64{
			"tm_edge_probes_sent_total":   sent,
			"tm_edge_probe_replies_total": recv,
			"tm_edge_send_errors_total":   errs,
		})) {
			if tr.To == StateFiring {
				fired = true
			}
		}
	}
	if !fired {
		t.Fatal("real blackout (sends advancing, replies absent) never fired")
	}
}

func TestEWMADriftFiresAndSelfResolves(t *testing.T) {
	st := newPushStore()
	e := NewEngine(st.Store, []Rule{{
		Name: "drift", Kind: KindEWMA, Series: "share",
		Alpha: 0.5, Band: 0.1, MinSamples: 3,
	}}, Options{})
	// Stable warmup.
	for i := 0; i < 5; i++ {
		if trs := e.Eval(st.round(map[string]float64{"share": 0.25})); len(trs) != 0 {
			t.Fatalf("stable series alerted: %+v", trs)
		}
	}
	// Step change beyond the band: fires.
	trs := e.Eval(st.round(map[string]float64{"share": 0.60}))
	var fired bool
	for _, tr := range trs {
		if tr.To == StateFiring {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("step change must fire, got %+v", trs)
	}
	// Baseline keeps learning: the new level becomes normal and the
	// alert self-resolves.
	var resolved bool
	for i := 0; i < 10 && !resolved; i++ {
		for _, tr := range e.Eval(st.round(map[string]float64{"share": 0.60})) {
			if tr.To == StateResolved {
				resolved = true
			}
		}
	}
	if !resolved {
		t.Fatal("drift alert never self-resolved after baseline caught up")
	}
}

func TestEWMAWarmupSuppresses(t *testing.T) {
	st := newPushStore()
	e := NewEngine(st.Store, []Rule{{
		Name: "drift", Kind: KindEWMA, Series: "share",
		Alpha: 0.2, Band: 0.01, MinSamples: 5,
	}}, Options{})
	// Wild swings during warmup must stay quiet.
	for i, v := range []float64{0.1, 0.9, 0.1, 0.9} {
		if trs := e.Eval(st.round(map[string]float64{"share": v})); len(trs) != 0 {
			t.Fatalf("warmup sample %d alerted: %+v", i, trs)
		}
	}
}

func TestWildcardFansOut(t *testing.T) {
	st := newPushStore()
	e := NewEngine(st.Store, []Rule{{
		Name: "hot", Kind: KindThreshold, Series: "pop_share*", Op: OpGT, Value: 0.5,
	}}, Options{})
	tick := st.round(map[string]float64{
		`pop_share{pop="0"}`: 0.7,
		`pop_share{pop="1"}`: 0.2,
		`other`:              9,
	})
	e.Eval(tick)
	got := states(e)
	if got[`hot|pop_share{pop="0"}`] != StateFiring {
		t.Fatalf("pop 0 must fire: %v", got)
	}
	if got[`hot|pop_share{pop="1"}`] != StateInactive {
		t.Fatalf("pop 1 must stay inactive: %v", got)
	}
	if len(got) != 2 {
		t.Fatalf("wildcard matched wrong series set: %v", got)
	}
}

func TestResolveAllAndStates(t *testing.T) {
	st := newPushStore()
	e := NewEngine(st.Store, []Rule{
		{Name: "a", Kind: KindThreshold, Series: "x", Op: OpGT, Value: 1},
		{Name: "b", Kind: KindThreshold, Series: "y", Op: OpGT, Value: 1, For: 5},
	}, Options{Labels: map[string]string{"tenant": "t1"}})
	tick := st.round(map[string]float64{"x": 5, "y": 5})
	e.Eval(tick) // a firing, b pending

	trs := e.ResolveAll(tick + 1)
	if len(trs) != 2 {
		t.Fatalf("ResolveAll transitions = %+v", trs)
	}
	got := states(e)
	if got["a|x"] != StateResolved || got["b|y"] != StateInactive {
		t.Fatalf("after ResolveAll: %v", got)
	}
	if fs := e.Firing(); len(fs) != 0 {
		t.Fatalf("nothing may stay firing: %+v", fs)
	}
	for _, sv := range e.States() {
		if sv.Labels["tenant"] != "t1" {
			t.Fatalf("base labels missing on %+v", sv)
		}
	}
}

func TestResultBytesDeterministicAndDistinct(t *testing.T) {
	run := func(vals []float64) []byte {
		st := newPushStore()
		e := NewEngine(st.Store, []Rule{{
			Name: "hot", Kind: KindThreshold, Series: "load", Op: OpGT, Value: 10, For: 2,
		}}, Options{})
		for _, v := range vals {
			e.Eval(st.round(map[string]float64{"load": v}))
		}
		return e.Result().Bytes()
	}
	seq := []float64{1, 20, 20, 20, 1, 1, 30, 30}
	if !bytes.Equal(run(seq), run(seq)) {
		t.Fatal("identical runs produced different alert bytes")
	}
	if bytes.Equal(run(seq), run([]float64{1, 1, 1, 1, 1, 1, 1, 1})) {
		t.Fatal("different runs produced identical alert bytes")
	}
}

func TestMirrorLogsFiring(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	st := newPushStore()
	e := NewEngine(st.Store, []Rule{{
		Name: "hot", Kind: KindThreshold, Series: "load", Op: OpGT, Value: 10,
	}}, Options{Labels: map[string]string{"tenant": "t9"}, Logger: logger})
	e.Eval(st.round(map[string]float64{"load": 99}))
	out := buf.String()
	if !strings.Contains(out, "alert firing") || !strings.Contains(out, "rule=hot") ||
		!strings.Contains(out, "tenant=t9") {
		t.Fatalf("firing log missing fields: %q", out)
	}
	buf.Reset()
	e.Eval(st.round(map[string]float64{"load": 0}))
	if !strings.Contains(buf.String(), "alert resolved") {
		t.Fatalf("resolved log missing: %q", buf.String())
	}
}

func TestNilEngineSafe(t *testing.T) {
	var e *Engine
	if e.Eval(1) != nil || e.States() != nil || e.ResolveAll(1) != nil {
		t.Fatal("nil engine must no-op")
	}
	if b := e.Result().Bytes(); len(b) != 4 {
		t.Fatalf("empty result bytes = %d, want 4 (count header)", len(b))
	}
}
