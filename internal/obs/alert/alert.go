// Package alert is a deterministic rule engine over history windows:
// threshold, absence, and EWMA-drift rules evaluated once per tick,
// each (rule, series) instance walking a pending → firing → resolved
// state machine. Everything the engine does is a pure function of the
// sampled history and the tick number — no wall time, no goroutines —
// so two same-seed runs produce byte-identical transition streams
// (Result.Bytes), which is what lets chaos tests assert "this fault
// raises that alert on this tick".
package alert

import (
	"encoding/binary"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"

	"painter/internal/obs/history"
	"painter/internal/obs/span"
)

// Kind selects the rule's judgment.
type Kind string

// Rule kinds. Threshold compares an aggregate of the window against a
// bound; absence fires when the watched series stops advancing while
// its gate series still does; ewma fires when the latest sample leaves
// an EWMA baseline band.
const (
	KindThreshold Kind = "threshold"
	KindAbsence   Kind = "absence"
	KindEWMA      Kind = "ewma"
)

// Op is a threshold comparison.
type Op string

// Threshold operators.
const (
	OpGT Op = "gt"
	OpLT Op = "lt"
)

// Agg selects the window aggregate a threshold rule compares.
type Agg string

// Window aggregates.
const (
	AggLast  Agg = "last"
	AggMean  Agg = "mean"
	AggRate  Agg = "rate"
	AggDelta Agg = "delta"
	AggP99   Agg = "p99"
	AggMax   Agg = "max"
)

// Rule is one declarative alert. Series is an exact history series name
// or a prefix match when it ends in '*' (one instance per matching
// series, so a wildcard rule fans out across PoPs or tenants).
type Rule struct {
	Name   string `json:"name"`
	Kind   Kind   `json:"kind"`
	Series string `json:"series"`
	// Window is how many samples the rule looks back over (default 1
	// for threshold/ewma, 5 for absence).
	Window int `json:"window,omitempty"`
	// For is how many consecutive true ticks before firing (default 1:
	// fire on the first). Values above 1 hold the instance pending.
	For int `json:"for,omitempty"`

	// Threshold fields.
	Op    Op      `json:"op,omitempty"`
	Value float64 `json:"value,omitempty"`
	Agg   Agg     `json:"agg,omitempty"`

	// EWMA-drift fields: baseline smoothing, the absolute band the
	// latest sample may wander before the rule is true, and the warmup
	// sample count before judging starts.
	Alpha      float64 `json:"alpha,omitempty"`
	Band       float64 `json:"band,omitempty"`
	MinSamples int     `json:"min_samples,omitempty"`

	// Gate (absence only) is the series that must still be advancing
	// for silence on Series to count as a blackout rather than an idle
	// system.
	Gate string `json:"gate,omitempty"`

	// Labels are extra identity labels echoed on states/transitions.
	Labels map[string]string `json:"labels,omitempty"`
}

// windowOr returns the rule's effective window.
func (r Rule) windowOr() int {
	if r.Window > 0 {
		return r.Window
	}
	if r.Kind == KindAbsence {
		return 5
	}
	return 1
}

func (r Rule) alphaOr() float64 {
	if r.Alpha > 0 && r.Alpha <= 1 {
		return r.Alpha
	}
	return 0.2
}

// State is one instance's position in the lifecycle.
type State string

// Instance states. Resolved is sticky until the condition is true
// again; it exists so "this fired and recovered" is visible after the
// fact rather than collapsing back into inactive.
const (
	StateInactive State = "inactive"
	StatePending  State = "pending"
	StateFiring   State = "firing"
	StateResolved State = "resolved"
)

// stateByte maps states onto the canonical encoding.
func stateByte(s State) byte {
	switch s {
	case StatePending:
		return 1
	case StateFiring:
		return 2
	case StateResolved:
		return 3
	default:
		return 0
	}
}

// Transition is one state change: the diffable unit of the alert
// stream.
type Transition struct {
	Tick   uint64  `json:"tick"`
	Rule   string  `json:"rule"`
	Series string  `json:"series"`
	From   State   `json:"from"`
	To     State   `json:"to"`
	Value  float64 `json:"value"`
}

// Result is a transition stream with a canonical encoding.
type Result struct {
	Transitions []Transition `json:"transitions"`
}

// Bytes serializes the stream canonically (little-endian, in emission
// order): two runs raised the same alerts at the same ticks iff their
// Bytes are identical.
func (r Result) Bytes() []byte {
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	str := func(s string) { u32(uint32(len(s))); b = append(b, s...) }
	u32(uint32(len(r.Transitions)))
	for _, t := range r.Transitions {
		u64(t.Tick)
		str(t.Rule)
		str(t.Series)
		b = append(b, stateByte(t.From), stateByte(t.To))
		u64(math.Float64bits(t.Value))
	}
	return b
}

// StateView is one instance's externally visible state (the /alerts
// payload element).
type StateView struct {
	Rule      string            `json:"rule"`
	Series    string            `json:"series"`
	State     State             `json:"state"`
	SinceTick uint64            `json:"since_tick"`
	Value     float64           `json:"value"`
	Baseline  float64           `json:"baseline,omitempty"`
	Labels    map[string]string `json:"labels,omitempty"`
}

// instance is the per-(rule, series) state machine.
type instance struct {
	rule   int // index into Engine.rules
	series string

	state       State
	sinceTick   uint64
	consecutive int
	value       float64

	// EWMA baseline state.
	baseline float64
	samples  int
}

// Options tunes an Engine.
type Options struct {
	// Labels are base identity labels (e.g. tenant="x") echoed on every
	// state view and used to pick a correlated flight-recorder span.
	Labels map[string]string
	// Logger mirrors firing/resolved transitions into structured logs
	// (nil = no mirroring).
	Logger *slog.Logger
	// Tracer supplies the flight recorder scanned for a span matching
	// the engine's labels when a firing alert is logged (nil = no trace
	// correlation).
	Tracer *span.Tracer
	// StreamCap bounds the retained transition stream (default 1024).
	StreamCap int
}

// Engine evaluates a rule set over one history store. All methods are
// safe for concurrent use; a nil Engine no-ops.
type Engine struct {
	store *history.Store
	rules []Rule
	opts  Options

	mu     sync.Mutex
	inst   map[string]*instance // key: ruleIdx|series
	order  []string             // insertion order of inst keys (deterministic)
	stream []Transition
}

// NewEngine builds an engine over a store. The rule list is evaluated
// in order on every Eval; wildcard rules bind to matching series
// lazily as they appear in the store.
func NewEngine(store *history.Store, rules []Rule, opts Options) *Engine {
	if opts.StreamCap <= 0 {
		opts.StreamCap = 1024
	}
	return &Engine{
		store: store,
		rules: append([]Rule(nil), rules...),
		opts:  opts,
		inst:  make(map[string]*instance),
	}
}

// matchSeries lists the series a rule binds to this tick.
func (e *Engine) matchSeries(r Rule) []string {
	if p, ok := strings.CutSuffix(r.Series, "*"); ok {
		return e.store.Match(p)
	}
	return []string{r.Series}
}

// Eval runs every rule once against the store at the given tick and
// returns the transitions it produced (nil when nothing changed).
func (e *Engine) Eval(tick uint64) []Transition {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	var out []Transition
	for ri, r := range e.rules {
		for _, sname := range e.matchSeries(r) {
			in := e.instanceLocked(ri, sname)
			cond, val := e.judge(r, in, sname)
			out = e.advanceLocked(tick, r, in, cond, val, out)
		}
	}
	e.stream = append(e.stream, out...)
	if len(e.stream) > e.opts.StreamCap {
		e.stream = e.stream[len(e.stream)-e.opts.StreamCap:]
	}
	e.mu.Unlock()
	e.mirror(out)
	return out
}

func (e *Engine) instanceLocked(ri int, sname string) *instance {
	key := fmt.Sprintf("%d|%s", ri, sname)
	in := e.inst[key]
	if in == nil {
		in = &instance{rule: ri, series: sname, state: StateInactive}
		e.inst[key] = in
		e.order = append(e.order, key)
	}
	return in
}

// judge evaluates one rule's condition against one series.
func (e *Engine) judge(r Rule, in *instance, sname string) (bool, float64) {
	switch r.Kind {
	case KindThreshold:
		w := e.store.Window(sname, r.windowOr())
		if w.Len() == 0 {
			return false, 0
		}
		v := aggregate(w, r.Agg)
		return compare(v, r.Op, r.Value), v
	case KindAbsence:
		ws := e.store.Window(sname, r.windowOr())
		wg := e.store.Window(r.Gate, r.windowOr())
		gateAdvancing := wg.Len() >= 2 && wg.Delta() > 0
		stalled := ws.Len() < 2 || ws.Delta() <= 0
		v, _ := ws.Last()
		return gateAdvancing && stalled, v
	case KindEWMA:
		w := e.store.Window(sname, 1)
		v, ok := w.Last()
		if !ok {
			return false, 0
		}
		in.samples++
		if in.samples == 1 {
			in.baseline = v
			return false, v
		}
		warm := in.samples > r.MinSamples
		cond := warm && math.Abs(v-in.baseline) > r.Band
		// The baseline keeps learning even while firing, so a drift
		// alert self-resolves once the new share becomes the norm.
		a := r.alphaOr()
		in.baseline = a*v + (1-a)*in.baseline
		return cond, v
	}
	return false, 0
}

func aggregate(w history.Window, agg Agg) float64 {
	switch agg {
	case AggMean:
		return w.Mean()
	case AggRate:
		return w.Rate()
	case AggDelta:
		return w.Delta()
	case AggP99:
		return w.Quantile(0.99)
	case AggMax:
		return w.Quantile(1)
	default: // AggLast and unset
		v, _ := w.Last()
		return v
	}
}

func compare(v float64, op Op, bound float64) bool {
	if op == OpLT {
		return v < bound
	}
	return v > bound
}

// advanceLocked walks one instance's state machine for one tick,
// appending any transitions to out.
func (e *Engine) advanceLocked(tick uint64, r Rule, in *instance, cond bool, val float64, out []Transition) []Transition {
	emit := func(to State) {
		out = append(out, Transition{
			Tick: tick, Rule: r.Name, Series: in.series,
			From: in.state, To: to, Value: val,
		})
		in.state = to
		in.sinceTick = tick
	}
	in.value = val
	if cond {
		in.consecutive++
		if in.state == StateInactive || in.state == StateResolved {
			emit(StatePending)
		}
		required := r.For
		if required < 1 {
			required = 1
		}
		if in.state == StatePending && in.consecutive >= required {
			emit(StateFiring)
		}
		return out
	}
	in.consecutive = 0
	switch in.state {
	case StatePending:
		emit(StateInactive)
	case StateFiring:
		emit(StateResolved)
	}
	return out
}

// ResolveAll force-resolves every firing instance and deactivates every
// pending one — the teardown path, so a removed tenant leaves no
// firing alerts behind in /alerts.
func (e *Engine) ResolveAll(tick uint64) []Transition {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	var out []Transition
	for _, key := range e.order {
		in := e.inst[key]
		r := e.rules[in.rule]
		switch in.state {
		case StateFiring:
			out = append(out, Transition{
				Tick: tick, Rule: r.Name, Series: in.series,
				From: in.state, To: StateResolved, Value: in.value,
			})
			in.state = StateResolved
			in.sinceTick = tick
		case StatePending:
			out = append(out, Transition{
				Tick: tick, Rule: r.Name, Series: in.series,
				From: in.state, To: StateInactive, Value: in.value,
			})
			in.state = StateInactive
			in.sinceTick = tick
		}
		in.consecutive = 0
	}
	e.stream = append(e.stream, out...)
	if len(e.stream) > e.opts.StreamCap {
		e.stream = e.stream[len(e.stream)-e.opts.StreamCap:]
	}
	e.mu.Unlock()
	e.mirror(out)
	return out
}

// States returns every instance's visible state, sorted by (rule,
// series) for stable output.
func (e *Engine) States() []StateView {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]StateView, 0, len(e.inst))
	for _, key := range e.order {
		in := e.inst[key]
		r := e.rules[in.rule]
		sv := StateView{
			Rule: r.Name, Series: in.series, State: in.state,
			SinceTick: in.sinceTick, Value: in.value,
			Labels: mergeLabels(e.opts.Labels, r.Labels),
		}
		if r.Kind == KindEWMA {
			sv.Baseline = in.baseline
		}
		out = append(out, sv)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Series < out[j].Series
	})
	return out
}

// Firing returns only the instances currently firing.
func (e *Engine) Firing() []StateView {
	var out []StateView
	for _, sv := range e.States() {
		if sv.State == StateFiring {
			out = append(out, sv)
		}
	}
	return out
}

// Result returns a copy of the bounded transition stream.
func (e *Engine) Result() Result {
	if e == nil {
		return Result{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return Result{Transitions: append([]Transition(nil), e.stream...)}
}

func mergeLabels(base, extra map[string]string) map[string]string {
	if len(base) == 0 && len(extra) == 0 {
		return nil
	}
	out := make(map[string]string, len(base)+len(extra))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range extra {
		out[k] = v
	}
	return out
}

// mirror writes firing/resolved transitions to the structured log,
// attaching the trace ID of the newest flight-recorder span matching
// the engine's base labels (the causal hook: "this alert fired, and
// here is the repair trace that was running").
func (e *Engine) mirror(trs []Transition) {
	if e.opts.Logger == nil {
		return
	}
	for _, t := range trs {
		if t.To != StateFiring && t.To != StateResolved {
			continue
		}
		args := []any{
			slog.String("rule", t.Rule),
			slog.String("series", t.Series),
			slog.String("state", string(t.To)),
			slog.Uint64("tick", t.Tick),
			slog.Float64("value", t.Value),
		}
		for _, k := range sortedKeys(e.opts.Labels) {
			args = append(args, slog.String(k, e.opts.Labels[k]))
		}
		if id := e.correlatedTrace(); id != 0 {
			args = append(args, slog.String("trace_id", fmt.Sprintf("%016x", id)))
		}
		if t.To == StateFiring {
			e.opts.Logger.Warn("alert firing", args...)
		} else {
			e.opts.Logger.Info("alert resolved", args...)
		}
	}
}

// correlatedTrace scans the flight recorder newest-first for a span
// whose attributes carry all of the engine's base labels (any span when
// no labels are set) and returns its trace ID, 0 when none matches.
func (e *Engine) correlatedTrace() uint64 {
	if e.opts.Tracer == nil {
		return 0
	}
	recs := e.opts.Tracer.Recorder().Snapshot()
	for i := len(recs) - 1; i >= 0; i-- {
		if spanMatches(recs[i], e.opts.Labels) {
			return recs[i].TraceID
		}
	}
	return 0
}

func spanMatches(rec span.Record, labels map[string]string) bool {
	for k, v := range labels {
		found := false
		for _, a := range rec.Attrs {
			if a.Key == k && a.Value == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
