package alert

// A line-based rule config format, so alert sets can live in flags and
// files without pulling in a config language:
//
//	# convergence SLO
//	alert slow_repair threshold series=core_repair_seconds_p99* op=gt value=1.5 window=8 agg=p99 for=2
//	alert blackout absence series=tm_edge_probe_replies_total gate=tm_edge_probes_sent_total window=5
//	alert drift ewma series=catchment_pop_share* band=0.08 alpha=0.2 min_samples=8 label.team=ingress
//
// ParseRules and FormatRules round-trip: FormatRules(ParseRules(x))
// re-parses to the same rule set (the fuzz target's property).

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseRules parses the rule config format. Blank lines and #-comments
// are skipped; any malformed line fails the whole parse.
func ParseRules(text string) ([]Rule, error) {
	var rules []Rule
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := parseRuleLine(line)
		if err != nil {
			return nil, fmt.Errorf("alert: line %d: %w", lineNo+1, err)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseRuleLine(line string) (Rule, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "alert" {
		return Rule{}, fmt.Errorf("want %q, got %q", "alert <name> <kind> k=v...", line)
	}
	r := Rule{Name: fields[1], Kind: Kind(fields[2])}
	switch r.Kind {
	case KindThreshold, KindAbsence, KindEWMA:
	default:
		return Rule{}, fmt.Errorf("unknown kind %q", fields[2])
	}
	for _, tok := range fields[3:] {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || v == "" {
			return Rule{}, fmt.Errorf("want key=value, got %q", tok)
		}
		var err error
		switch {
		case k == "series":
			r.Series = v
		case k == "gate":
			r.Gate = v
		case k == "op":
			if v != string(OpGT) && v != string(OpLT) {
				return Rule{}, fmt.Errorf("op must be gt or lt, got %q", v)
			}
			r.Op = Op(v)
		case k == "agg":
			switch Agg(v) {
			case AggLast, AggMean, AggRate, AggDelta, AggP99, AggMax:
				r.Agg = Agg(v)
			default:
				return Rule{}, fmt.Errorf("unknown agg %q", v)
			}
		case k == "value":
			r.Value, err = strconv.ParseFloat(v, 64)
		case k == "alpha":
			r.Alpha, err = strconv.ParseFloat(v, 64)
		case k == "band":
			r.Band, err = strconv.ParseFloat(v, 64)
		case k == "window":
			r.Window, err = strconv.Atoi(v)
		case k == "for":
			r.For, err = strconv.Atoi(v)
		case k == "min_samples":
			r.MinSamples, err = strconv.Atoi(v)
		case strings.HasPrefix(k, "label."):
			lk := strings.TrimPrefix(k, "label.")
			if lk == "" {
				return Rule{}, fmt.Errorf("empty label key in %q", tok)
			}
			if r.Labels == nil {
				r.Labels = map[string]string{}
			}
			r.Labels[lk] = v
		default:
			return Rule{}, fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return Rule{}, fmt.Errorf("bad %s: %v", k, err)
		}
	}
	if err := r.Validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// Validate checks a rule is well-formed (whether parsed or built in
// code).
func (r Rule) Validate() error {
	if r.Name == "" || strings.ContainsAny(r.Name, " \t\n") {
		return fmt.Errorf("rule name %q must be a non-empty token", r.Name)
	}
	if r.Series == "" || strings.ContainsAny(r.Series, " \t\n") {
		return fmt.Errorf("rule %q: series %q must be a non-empty token", r.Name, r.Series)
	}
	switch r.Kind {
	case KindThreshold:
	case KindAbsence:
		if r.Gate == "" {
			return fmt.Errorf("rule %q: absence needs gate=", r.Name)
		}
		if strings.ContainsAny(r.Gate, " \t\n") {
			return fmt.Errorf("rule %q: gate %q must be a token", r.Name, r.Gate)
		}
	case KindEWMA:
		if r.Band <= 0 {
			return fmt.Errorf("rule %q: ewma needs band > 0", r.Name)
		}
		if r.Alpha < 0 || r.Alpha > 1 {
			return fmt.Errorf("rule %q: alpha must be in [0,1]", r.Name)
		}
	default:
		return fmt.Errorf("rule %q: unknown kind %q", r.Name, r.Kind)
	}
	if r.Window < 0 || r.For < 0 || r.MinSamples < 0 {
		return fmt.Errorf("rule %q: window/for/min_samples must be >= 0", r.Name)
	}
	for k, v := range r.Labels {
		if k == "" || strings.ContainsAny(k, " \t\n=") || strings.ContainsAny(v, " \t\n") {
			return fmt.Errorf("rule %q: label %q=%q must be tokens", r.Name, k, v)
		}
	}
	return nil
}

// FormatRules renders rules back into the config format, one line per
// rule, omitting zero-valued fields.
func FormatRules(rules []Rule) string {
	var b strings.Builder
	for _, r := range rules {
		fmt.Fprintf(&b, "alert %s %s series=%s", r.Name, r.Kind, r.Series)
		if r.Gate != "" {
			fmt.Fprintf(&b, " gate=%s", r.Gate)
		}
		if r.Op != "" {
			fmt.Fprintf(&b, " op=%s", r.Op)
		}
		if r.Agg != "" {
			fmt.Fprintf(&b, " agg=%s", r.Agg)
		}
		if r.Value != 0 {
			fmt.Fprintf(&b, " value=%s", fmtF(r.Value))
		}
		if r.Alpha != 0 {
			fmt.Fprintf(&b, " alpha=%s", fmtF(r.Alpha))
		}
		if r.Band != 0 {
			fmt.Fprintf(&b, " band=%s", fmtF(r.Band))
		}
		if r.Window != 0 {
			fmt.Fprintf(&b, " window=%d", r.Window)
		}
		if r.For != 0 {
			fmt.Fprintf(&b, " for=%d", r.For)
		}
		if r.MinSamples != 0 {
			fmt.Fprintf(&b, " min_samples=%d", r.MinSamples)
		}
		for _, k := range sortedKeys(r.Labels) {
			fmt.Fprintf(&b, " label.%s=%s", k, r.Labels[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fmtF(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
