package alert

import (
	"encoding/json"
	"net/http"
)

// StatesJSON is the standalone-daemon /alerts payload.
type StatesJSON struct {
	States []StateView  `json:"states"`
	Recent []Transition `json:"recent,omitempty"`
}

// StatesHandler serves one engine's instance states and recent
// transitions as JSON — the standalone-daemon /alerts surface (the
// control API aggregates tenants itself).
func StatesHandler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		out := StatesJSON{States: e.States()}
		if out.States == nil {
			out.States = []StateView{}
		}
		out.Recent = e.Result().Transitions
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}
