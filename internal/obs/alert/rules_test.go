package alert

import (
	"reflect"
	"strings"
	"testing"
)

const sampleConfig = `
# convergence SLO
alert slow_repair threshold series=core_repair_seconds_p99* op=gt value=1.5 window=8 agg=p99 for=2

alert blackout absence series=tm_edge_probe_replies_total gate=tm_edge_probes_sent_total window=5
alert drift ewma series=catchment_pop_share* band=0.08 alpha=0.2 min_samples=8 label.team=ingress
`

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(sampleConfig)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	if rules[0].Name != "slow_repair" || rules[0].Kind != KindThreshold ||
		rules[0].Op != OpGT || rules[0].Value != 1.5 || rules[0].Window != 8 ||
		rules[0].Agg != AggP99 || rules[0].For != 2 {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Kind != KindAbsence || rules[1].Gate != "tm_edge_probes_sent_total" {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if rules[2].Kind != KindEWMA || rules[2].Band != 0.08 ||
		rules[2].Labels["team"] != "ingress" {
		t.Fatalf("rule 2 = %+v", rules[2])
	}
}

func TestParseRulesErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"alert x bogus series=a",
		"alert x threshold",                     // missing series
		"alert x threshold series=a op=between", // bad op
		"alert x threshold series=a value=abc",
		"alert x threshold series=a window=-1",
		"alert x absence series=a", // absence needs gate
		"alert x ewma series=a",    // ewma needs band
		"alert x ewma series=a band=0.1 alpha=2",
		"alert x threshold series=a wat=1", // unknown key
		"alert x threshold series=a agg=median",
		"alert x threshold series=a label.=v",
	}
	for _, line := range bad {
		if _, err := ParseRules(line); err == nil {
			t.Errorf("ParseRules(%q) accepted", line)
		}
	}
}

func TestFormatRulesRoundTrip(t *testing.T) {
	orig, err := ParseRules(sampleConfig)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseRules(FormatRules(orig))
	if err != nil {
		t.Fatalf("formatted config failed to parse: %v\n%s", err, FormatRules(orig))
	}
	if !reflect.DeepEqual(orig, again) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", orig, again)
	}
}

func TestDetectorRulesValid(t *testing.T) {
	var all []Rule
	all = append(all, CatchmentDriftRules(0, 0, 1)...)
	all = append(all, ConvergenceSLORules(0, 0, 0, 1)...)
	all = append(all, ProbeBlackoutRule(0, 1))
	for _, r := range all {
		if err := r.Validate(); err != nil {
			t.Errorf("detector rule %q invalid: %v", r.Name, err)
		}
	}
	// And they survive the config round trip.
	again, err := ParseRules(FormatRules(all))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, again) {
		t.Fatalf("detector round trip diverged:\n%+v\n%+v", all, again)
	}
}

// FuzzParseRules checks the parser never panics and that accepted
// configs are format/parse stable: format(parse(format(parse(x))))
// equals format(parse(x)).
func FuzzParseRules(f *testing.F) {
	f.Add(sampleConfig)
	f.Add("alert a threshold series=x op=lt value=-3.5e2 window=2")
	f.Add("alert b absence series=x gate=y for=3 label.k=v")
	f.Add("alert c ewma series=p* band=1 alpha=0.9 min_samples=2")
	f.Add("# comment only\n\n")
	f.Add("alert \x00 threshold series=x")
	f.Fuzz(func(t *testing.T, text string) {
		rules, err := ParseRules(text)
		if err != nil {
			return
		}
		form := FormatRules(rules)
		rules2, err := ParseRules(form)
		if err != nil {
			t.Fatalf("formatted config rejected: %v\ninput: %q\nformatted: %q", err, text, form)
		}
		if form2 := FormatRules(rules2); form != form2 {
			t.Fatalf("format not stable:\n%q\n%q", form, form2)
		}
		if strings.Count(form, "\n") != len(rules) {
			t.Fatalf("formatted %d rules into %q", len(rules), form)
		}
	})
}
