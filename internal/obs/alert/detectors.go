package alert

// The three detectors the control plane ships with, expressed as rule
// constructors so rigs and daemons can tune the knobs without
// re-deriving series names.

// CatchmentDriftRules watches every per-PoP anycast share series
// (netsim.CatchmentGauges) against an EWMA baseline: a share moving
// more than band in one tick — a PoP suddenly absorbing or shedding
// traffic nobody asked it to — goes pending, and firing after forTicks
// consecutive ticks outside the band. This is the detection hook the
// hijack/poisoning chaos family consumes: a prefix announced by an
// attacker shows up as exactly this share shift.
func CatchmentDriftRules(band float64, warmup, forTicks int) []Rule {
	if band <= 0 {
		band = 0.08
	}
	if warmup <= 0 {
		warmup = 4
	}
	return []Rule{{
		Name:       "catchment_drift",
		Kind:       KindEWMA,
		Series:     "catchment_pop_share*",
		Alpha:      0.2,
		Band:       band,
		MinSamples: warmup,
		For:        forTicks,
	}}
}

// ConvergenceSLORules watches the continuous controller's repair
// quality per tenant: sync latency (p99 of core_repair_seconds over the
// window) above p99Secs, or a mean dirty fraction above dirtyMax —
// i.e. the controller is either slow to converge or churning most of
// the config every tick.
func ConvergenceSLORules(p99Secs, dirtyMax float64, window, forTicks int) []Rule {
	if p99Secs <= 0 {
		p99Secs = 2.0
	}
	if dirtyMax <= 0 {
		dirtyMax = 0.9
	}
	if window <= 0 {
		window = 8
	}
	return []Rule{
		{
			Name:   "convergence_slo_latency",
			Kind:   KindThreshold,
			Series: "core_repair_seconds_p99*",
			Op:     OpGT,
			Value:  p99Secs,
			Agg:    AggMax,
			Window: window,
			For:    forTicks,
		},
		{
			Name:   "convergence_slo_dirty",
			Kind:   KindThreshold,
			Series: "core_repair_dirty_fraction*",
			Op:     OpGT,
			Value:  dirtyMax,
			Agg:    AggMean,
			Window: window,
			For:    forTicks,
		},
	}
}

// ProbeBlackoutRule watches the TM edge's probe counters: replies going
// flat over the window while sends still advance means every
// destination has gone silent at once — an ingress blackout rather
// than an idle edge.
func ProbeBlackoutRule(window, forTicks int) Rule {
	if window <= 0 {
		window = 5
	}
	return Rule{
		Name:   "tm_probe_blackout",
		Kind:   KindAbsence,
		Series: "tm_edge_probe_replies_total",
		Gate:   "tm_edge_probes_sent_total",
		Window: window,
		For:    forTicks,
	}
}
