package obs

// Lightweight metrics HTTP serving for daemons. Each daemon that is not
// already running an HTTP control surface (route-server, tm-edge,
// tm-pop) starts one of these next to its data plane; painterd gets the
// same endpoints for free from the controlapi mux.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// MetricsServer is a running metrics listener.
type MetricsServer struct {
	srv  *http.Server
	addr string
}

// StartServer listens on addr and serves /metrics (Prometheus text)
// and /debug/obs (JSON snapshot) for the given registries. Pass
// "host:0" to bind an ephemeral port; Addr reports the bound address.
func StartServer(addr string, regs ...*Registry) (*MetricsServer, error) {
	return startServer(addr, NewMux(regs...))
}

func startServer(addr string, mux *http.ServeMux) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen %q: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{srv: srv, addr: ln.Addr().String()}, nil
}

// Addr returns the bound listen address.
func (m *MetricsServer) Addr() string { return m.addr }

// Shutdown stops the listener, waiting briefly for in-flight scrapes.
func (m *MetricsServer) Shutdown() error {
	if m == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return m.srv.Shutdown(ctx)
}

// DumpSnapshot writes the merged snapshot of the registries as indented
// JSON — the daemons' final flush on graceful shutdown.
func DumpSnapshot(w io.Writer, regs ...*Registry) error {
	snaps := make([]RegistrySnapshot, 0, len(regs))
	for _, r := range regs {
		if r != nil {
			snaps = append(snaps, r.Snapshot())
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(MergeSnapshots(snaps...))
}
