package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteProm writes the registry in the Prometheus text exposition
// format (version 0.0.4). Families are emitted in registration order;
// HELP/TYPE lines appear once per family. A nil registry writes
// nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	seenFamily := map[string]bool{}
	for _, e := range r.snapshotEntries() {
		if !seenFamily[e.name] {
			seenFamily[e.name] = true
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", e.name, strings.ReplaceAll(e.help, "\n", " "))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		}
		labels := r.exposeLabels(e.labels)
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", instanceName(e.name, labels), e.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %s\n", instanceName(e.name, labels), fmtFloat(e.gauge.Value()))
		case kindGaugeFunc:
			r.mu.Lock()
			fn := e.gfn
			r.mu.Unlock()
			v := 0.0
			if fn != nil {
				v = fn()
			}
			fmt.Fprintf(bw, "%s %s\n", instanceName(e.name, labels), fmtFloat(v))
		case kindHistogram:
			writePromHistogram(bw, e, labels)
		}
	}
	return bw.Flush()
}

// instanceName renders name{labels} with the (already sorted) labels.
func instanceName(name string, labels []Label) string {
	return renderKey(name, labels)
}

// withLE renders name{labels,le="bound"}.
func withLE(name string, labels []Label, le string) string {
	ls := make([]Label, 0, len(labels)+1)
	ls = append(ls, labels...)
	ls = append(ls, Label{Key: "le", Value: le})
	return renderKey(name+"_bucket", ls)
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writePromHistogram emits cumulative le-buckets (only octave
// boundaries that hold observations, plus +Inf), _sum, and _count.
func writePromHistogram(w io.Writer, e *entry, labels []Label) {
	s := e.hist.Snapshot()
	cum := uint64(0)
	for i, n := range s.Buckets {
		cum += n
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "%s %d\n", withLE(e.name, labels, fmtFloat(bucketUpper(i))), cum)
	}
	fmt.Fprintf(w, "%s %d\n", withLE(e.name, labels, "+Inf"), s.Count)
	fmt.Fprintf(w, "%s %s\n", instanceName(e.name+"_sum", labels), fmtFloat(s.Sum))
	fmt.Fprintf(w, "%s %d\n", instanceName(e.name+"_count", labels), s.Count)
}

// RegistrySnapshot is the JSON shape served by /debug/obs: plain maps
// from the rendered instance key to the current value.
type RegistrySnapshot struct {
	Counters   map[string]uint64      `json:"counters,omitempty"`
	Gauges     map[string]float64     `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value. A nil registry
// returns an empty snapshot.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSummary{},
	}
	if r == nil {
		return s
	}
	for _, e := range r.snapshotEntries() {
		key := renderKey(e.name, r.exposeLabels(e.labels))
		switch e.kind {
		case kindCounter:
			s.Counters[key] = e.counter.Value()
		case kindGauge:
			s.Gauges[key] = e.gauge.Value()
		case kindGaugeFunc:
			r.mu.Lock()
			fn := e.gfn
			r.mu.Unlock()
			if fn != nil {
				s.Gauges[key] = fn()
			} else {
				s.Gauges[key] = 0
			}
		case kindHistogram:
			hs := e.hist.Snapshot()
			s.Histograms[key] = hs.Summary()
		}
	}
	return s
}

// MergeSnapshots combines snapshots from several registries (later
// entries win on key collisions, which should not occur when metric
// names are namespaced per subsystem).
func MergeSnapshots(snaps ...RegistrySnapshot) RegistrySnapshot {
	out := RegistrySnapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSummary{},
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range s.Histograms {
			out.Histograms[k] = v
		}
	}
	return out
}

// Handler returns an http.Handler serving the Prometheus text format
// for all given registries concatenated. Nil registries are skipped.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if r == nil {
				continue
			}
			if err := r.WriteProm(w); err != nil {
				return
			}
		}
	})
}

// JSONHandler returns an http.Handler serving the merged JSON snapshot
// of all given registries. Nil registries are skipped.
func JSONHandler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snaps := make([]RegistrySnapshot, 0, len(regs))
		for _, r := range regs {
			if r == nil {
				continue
			}
			snaps = append(snaps, r.Snapshot())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(MergeSnapshots(snaps...))
	})
}

// DynamicHandler is Handler with the registry list re-evaluated on
// every scrape — the exposition surface for processes whose registry
// set changes at runtime (tenant add/remove in painterd).
func DynamicHandler(regs func() []*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		Handler(regs()...).ServeHTTP(w, req)
	})
}

// DynamicJSONHandler is JSONHandler with the registry list re-evaluated
// on every request.
func DynamicJSONHandler(regs func() []*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		JSONHandler(regs()...).ServeHTTP(w, req)
	})
}

// NewMux returns a mux serving GET /metrics (Prometheus text) and
// GET /debug/obs (JSON snapshot) — the standard introspection surface
// for the standalone daemons.
func NewMux(regs ...*Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(regs...))
	mux.Handle("/debug/obs", JSONHandler(regs...))
	return mux
}

// ParseText parses Prometheus text-format exposition into a flat map
// from sample name (including rendered labels, exactly as exposed) to
// value. Comment and blank lines are skipped. It exists so tests can
// scrape and assert without a client library.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the field after the last space outside braces.
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			return nil, fmt.Errorf("obs: unparseable sample line %q", line)
		}
		name := strings.TrimSpace(line[:idx])
		valStr := strings.TrimSpace(line[idx+1:])
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad value in line %q: %v", line, err)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SortedKeys returns the map's keys sorted — a convenience for stable
// test output and snapshot dumps.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
