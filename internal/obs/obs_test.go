package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: every constructor on a nil registry returns nil and
// every method on a nil metric is a no-op — the disabled-path contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "")
	r.GaugeFunc("gf", "", func() float64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}
	h.Observe(1.5)
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram snapshot not empty")
	}
	if err := r.WriteProm(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WriteProm: %v", err)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if again := r.Counter("requests_total", "requests"); again != c {
		t.Error("get-or-create returned a different counter instance")
	}

	g := r.Gauge("temp", "")
	g.Set(10)
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Errorf("gauge = %v, want 7.5", got)
	}
}

func TestLabelSetsAddressDistinctInstances(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("events_total", "", L("kind", "up"))
	b := r.Counter("events_total", "", L("kind", "down"))
	if a == b {
		t.Fatal("different label values must be different instances")
	}
	a.Inc()
	a.Inc()
	b.Inc()
	// Permuted label order addresses the same instance.
	x := r.Counter("multi_total", "", L("a", "1"), L("b", "2"))
	y := r.Counter("multi_total", "", L("b", "2"), L("a", "1"))
	if x != y {
		t.Error("permuted label order must address the same instance")
	}
	snap := r.Snapshot()
	if snap.Counters[`events_total{kind="up"}`] != 2 {
		t.Errorf("snapshot: %v", snap.Counters)
	}
	if snap.Counters[`events_total{kind="down"}`] != 1 {
		t.Errorf("snapshot: %v", snap.Counters)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramExactMoments(t *testing.T) {
	h := NewHistogram()
	vals := []float64{0.5, 1.0, 2.0, 4.0, 100.0}
	sum := 0.0
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Errorf("count = %d, want %d", s.Count, len(vals))
	}
	if math.Abs(s.Sum-sum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, sum)
	}
	if s.Max != 100.0 {
		t.Errorf("max = %v, want 100", s.Max)
	}
}

// TestHistogramQuantileAccuracy: bucket width is <= 25% of the value,
// so any quantile estimate must be within 25% of the true value for a
// dense sample.
func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i)) // uniform 1..n
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := q * n
		got := s.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.25 {
			t.Errorf("q%v = %v, want %v ±25%%", q, got, want)
		}
	}
	if got := s.Quantile(1); got != s.Max {
		t.Errorf("q1 = %v, want max %v", got, s.Max)
	}
	if (&HistSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile != 0")
	}
}

func TestHistogramExtremesAndJunk(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)           // clamps to bucket 0, still counted
	h.Observe(-5)          // clamps, counted, max unaffected
	h.Observe(1e-300)      // below range: clamps low
	h.Observe(1e300)       // above range: clamps high
	h.Observe(math.NaN())  // dropped
	h.Observe(math.Inf(1)) // dropped
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("count = %d, want 4 (NaN/Inf dropped)", s.Count)
	}
	if s.Max != 1e300 {
		t.Errorf("max = %v, want 1e300 (exact despite clamped bucket)", s.Max)
	}
}

func TestHistogramMerge(t *testing.T) {
	h1, h2 := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		h1.Observe(1)
		h2.Observe(1000)
	}
	a, b := h1.Snapshot(), h2.Snapshot()
	a.Merge(b)
	if a.Count != 200 {
		t.Errorf("merged count = %d", a.Count)
	}
	if math.Abs(a.Sum-100100) > 1e-6 {
		t.Errorf("merged sum = %v", a.Sum)
	}
	if a.Max != 1000 {
		t.Errorf("merged max = %v", a.Max)
	}
	// Median of a bimodal 50/50 merge sits in one of the two modes.
	med := a.Quantile(0.5)
	if !(med < 2 || med > 500) {
		t.Errorf("bimodal median = %v, expected near a mode", med)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	s := h.Snapshot()
	if s.Count != workers*per || s.Sum != workers*per {
		t.Errorf("hist count=%d sum=%v, want %d", s.Count, s.Sum, workers*per)
	}
}

// TestPromExposition round-trips WriteProm through ParseText and
// checks histogram invariants (cumulative buckets, sum/count lines).
func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "total requests", L("code", "200")).Add(7)
	r.Gauge("up", "is up").Set(1)
	r.GaugeFunc("derived", "computed", func() float64 { return 2.5 })
	h := r.Histogram("lat_seconds", "latency")
	for _, v := range []float64{0.001, 0.01, 0.1, 1} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		"# HELP reqs_total total requests",
		"# TYPE up gauge",
		"# TYPE derived gauge",
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, text)
	}
	if samples[`reqs_total{code="200"}`] != 7 {
		t.Errorf("counter sample: %v", samples)
	}
	if samples["up"] != 1 || samples["derived"] != 2.5 {
		t.Errorf("gauge samples: up=%v derived=%v", samples["up"], samples["derived"])
	}
	if samples["lat_seconds_count"] != 4 {
		t.Errorf("hist count sample = %v", samples["lat_seconds_count"])
	}
	if math.Abs(samples["lat_seconds_sum"]-1.111) > 1e-9 {
		t.Errorf("hist sum sample = %v", samples["lat_seconds_sum"])
	}
	if samples[`lat_seconds_bucket{le="+Inf"}`] != 4 {
		t.Errorf("hist +Inf bucket = %v", samples[`lat_seconds_bucket{le="+Inf"}`])
	}
	// Every finite bucket's cumulative count must not exceed +Inf's.
	inf := samples[`lat_seconds_bucket{le="+Inf"}`]
	for _, k := range SortedKeys(samples) {
		if strings.HasPrefix(k, "lat_seconds_bucket") && samples[k] > inf {
			t.Errorf("bucket %s = %v exceeds +Inf bucket %v", k, samples[k], inf)
		}
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	if _, err := ParseText(strings.NewReader("garbage-without-value\n")); err == nil {
		t.Error("want error for sample line without value")
	}
	m, err := ParseText(strings.NewReader("# just a comment\n\n"))
	if err != nil || len(m) != 0 {
		t.Errorf("comments/blank lines: m=%v err=%v", m, err)
	}
}

func TestMergeSnapshots(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("a_total", "").Add(1)
	r2.Counter("b_total", "").Add(2)
	r2.Gauge("g", "").Set(9)
	m := MergeSnapshots(r1.Snapshot(), r2.Snapshot())
	if m.Counters["a_total"] != 1 || m.Counters["b_total"] != 2 || m.Gauges["g"] != 9 {
		t.Errorf("merged: %+v", m)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("msg", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `msg="a\"b\\c\n"`) {
		t.Errorf("label not escaped:\n%s", sb.String())
	}
}

func TestBucketBoundsConsistent(t *testing.T) {
	for i := 0; i < histNumBuckets; i++ {
		lo, hi := bucketLower(i), bucketUpper(i)
		if !(lo < hi) {
			t.Fatalf("bucket %d: lo %v >= hi %v", i, lo, hi)
		}
		if i > 0 && bucketUpper(i-1) != lo {
			t.Fatalf("bucket %d: gap/overlap with predecessor: upper(%d)=%v lower(%d)=%v",
				i, i-1, bucketUpper(i-1), i, lo)
		}
		// A value inside the bucket must index back to it.
		mid := lo + (hi-lo)/2
		if got := bucketIndex(mid); got != i {
			t.Fatalf("bucketIndex(%v) = %d, want %d", mid, got, i)
		}
	}
}
