package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// Base labels are an exposition-time concern: instruments register and
// look up by their own labels only, and the base set is merged into
// every series when written out — the mechanism that turns a per-world
// registry into a tenant-labeled one without touching instrumented
// code.
func TestBaseLabelsExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "Events.")
	c.Add(3)
	g := r.Gauge("queue_depth", "Depth.", L("shard", "a"))
	g.Set(2)
	h := r.Histogram("latency_seconds", "Latency.")
	h.Observe(0.5)

	r.SetBaseLabels(L("tenant", "acme"))

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`events_total{tenant="acme"} 3`,
		`queue_depth{shard="a",tenant="acme"} 2`,
		`latency_seconds_count{tenant="acme"} 1`,
		`latency_seconds_bucket{le="+Inf",tenant="acme"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Lookups stay keyed by the instrument's own labels: re-registering
	// returns the same counter, unaffected by the base set.
	if r.Counter("events_total", "Events.") != c {
		t.Error("base labels changed instrument identity")
	}

	// Snapshot keys carry the merged labels.
	snap := r.Snapshot()
	if _, ok := snap.Counters[`events_total{tenant="acme"}`]; !ok {
		t.Errorf("snapshot keys = %v", snap.Counters)
	}
}

func TestBaseLabelsEntryWins(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "C.", L("tenant", "explicit")).Inc()
	r.SetBaseLabels(L("tenant", "base"))
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c_total{tenant="explicit"} 1`) {
		t.Errorf("instrument label should beat base label:\n%s", b.String())
	}
	if strings.Contains(b.String(), `tenant="base"`) {
		t.Errorf("base label leaked alongside explicit one:\n%s", b.String())
	}
}

func TestBaseLabelsNilSafe(t *testing.T) {
	var r *Registry
	r.SetBaseLabels(L("tenant", "x")) // must not panic
	if r.BaseLabels() != nil {
		t.Error("nil registry has base labels")
	}
	r2 := NewRegistry()
	if r2.BaseLabels() != nil {
		t.Error("fresh registry has base labels")
	}
	r2.SetBaseLabels(L("b", "2"), L("a", "1"))
	ls := r2.BaseLabels()
	if len(ls) != 2 || ls[0].Key != "a" || ls[1].Key != "b" {
		t.Errorf("base labels not sorted: %v", ls)
	}
}

func TestDynamicHandlerReevaluates(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("one_total", "One.").Inc()
	regs := []*Registry{r1}
	h := DynamicHandler(func() []*Registry { return regs })

	body := func() string {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		return rec.Body.String()
	}
	if out := body(); !strings.Contains(out, "one_total 1") {
		t.Fatalf("first scrape: %s", out)
	}
	r2 := NewRegistry()
	r2.SetBaseLabels(L("tenant", "late"))
	r2.Counter("two_total", "Two.").Inc()
	regs = append(regs, r2)
	if out := body(); !strings.Contains(out, `two_total{tenant="late"} 1`) {
		t.Fatalf("second scrape missed the new registry: %s", out)
	}
}
