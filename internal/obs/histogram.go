package obs

import (
	"math"
	"sync/atomic"
)

// Histogram bucketing: log-scale, fixed layout, derived directly from
// the float64 bit pattern so Observe needs no search. Each power-of-two
// octave is split into 4 sub-buckets by the top two mantissa bits,
// giving ~19% worst-case relative bucket width — plenty for latency
// and size distributions spanning nine decades.
//
// Covered exponent range: 2^histMinExp .. 2^(histMaxExp+1). With
// -40..+23 that is ~9.1e-13 .. 1.7e+7: nanoseconds-as-seconds up to
// multi-day durations, or bytes up to tens of MB. Values outside the
// range clamp to the first/last bucket; Sum and Max stay exact.
const (
	histMinExp     = -40
	histMaxExp     = 23
	histSubBuckets = 4
	histNumBuckets = (histMaxExp - histMinExp + 1) * histSubBuckets // 256
)

// Histogram is a lock-free fixed-bucket log-scale histogram. The zero
// value is NOT ready: use NewHistogram (or Registry.Histogram). A nil
// *Histogram no-ops.
type Histogram struct {
	buckets [histNumBuckets]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated: exact sum
	maxBits atomic.Uint64 // float64 bits of the max observation
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a positive finite v to its bucket.
func bucketIndex(v float64) int {
	bits := math.Float64bits(v)
	exp := int(bits>>52&0x7ff) - 1023
	sub := int(bits >> 50 & 3) // top two explicit mantissa bits
	idx := (exp-histMinExp)*histSubBuckets + sub
	if idx < 0 {
		return 0
	}
	if idx >= histNumBuckets {
		return histNumBuckets - 1
	}
	return idx
}

// bucketUpper returns the exclusive upper bound of bucket i.
func bucketUpper(i int) float64 {
	oct := i / histSubBuckets
	sub := i % histSubBuckets
	// Bucket spans [2^e * (1 + sub/4), 2^e * (1 + (sub+1)/4)).
	return math.Ldexp(1+float64(sub+1)/histSubBuckets, histMinExp+oct)
}

// bucketLower returns the inclusive lower bound of bucket i.
func bucketLower(i int) float64 {
	oct := i / histSubBuckets
	sub := i % histSubBuckets
	return math.Ldexp(1+float64(sub)/histSubBuckets, histMinExp+oct)
}

// Observe records v. Non-finite values are dropped; v <= 0 clamps into
// the lowest bucket (counted, summed as-is) so "zero duration" is not
// silently lost.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	var idx int
	if v > 0 {
		idx = bucketIndex(v)
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	// Max starts at 0 and only moves up: for the non-positive
	// observations we clamp above, it simply stays 0.
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Snapshot returns a consistent-enough copy for reporting. Individual
// loads are atomic; under concurrent writes the snapshot may straddle
// an observation (count ahead of a bucket or vice versa) — quantile
// math tolerates that, and quiescent snapshots are exact.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	total := uint64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		total += n
	}
	// Clamp Count to the bucket total so quantiles never chase
	// observations whose bucket increment we did not see.
	if total < s.Count {
		s.Count = total
	}
	return s
}

// HistSnapshot is a point-in-time copy of a histogram. Snapshots from
// histograms of the same layout (always true within this package) can
// be merged.
type HistSnapshot struct {
	Count   uint64
	Sum     float64
	Max     float64
	Buckets [histNumBuckets]uint64
}

// Merge accumulates other into s.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1) by
// linear interpolation within the containing log-scale bucket. Returns
// 0 on an empty snapshot. The estimate is capped at Max, and q=1
// returns Max exactly.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo, hi := bucketLower(i), bucketUpper(i)
			if i == 0 {
				lo = 0 // bucket 0 also holds clamped v<=0 observations
			}
			frac := (rank - cum) / float64(n)
			v := lo + frac*(hi-lo)
			if s.Max > 0 && v > s.Max {
				v = s.Max
			}
			return v
		}
		cum = next
	}
	return s.Max
}

// Mean returns Sum/Count, or 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Summary condenses a snapshot into the fields reports care about.
type HistSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summary computes the standard report quantiles.
func (s *HistSnapshot) Summary() HistSummary {
	return HistSummary{
		Count: s.Count,
		Sum:   s.Sum,
		Max:   s.Max,
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
}
