package obs

// Debug-surface wiring shared by the daemons: the metrics mux extended
// with the flight-recorder trace export and (optionally) pprof. Kept
// separate from expose.go so the metrics-only surface stays
// dependency-light.

import (
	"net/http"
	"net/http/pprof"

	"painter/internal/obs/span"
)

// MuxConfig configures the daemons' introspection mux.
type MuxConfig struct {
	// Regs are the metric registries merged into /metrics and
	// /debug/obs.
	Regs []*Registry
	// Trace, when non-nil, backs GET /debug/trace with the tracer's
	// flight recorder (Chrome trace-event JSON). A nil tracer still
	// serves a valid empty trace, so the endpoint is always mounted.
	Trace *span.Tracer
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
	// Extra mounts additional handlers by pattern — how daemons attach
	// surfaces built on top of obs (history, alerts) without obs
	// importing them.
	Extra map[string]http.Handler
}

// NewMuxWith returns a mux serving GET /metrics, GET /debug/obs,
// GET /debug/trace, (when enabled) /debug/pprof/, and any Extra
// handlers.
func NewMuxWith(cfg MuxConfig) *http.ServeMux {
	mux := NewMux(cfg.Regs...)
	mux.Handle("/debug/trace", span.Handler(cfg.Trace))
	if cfg.Pprof {
		MountPprof(mux)
	}
	for pattern, h := range cfg.Extra {
		mux.Handle(pattern, h)
	}
	return mux
}

// MountPprof registers the net/http/pprof handlers on mux (explicitly,
// rather than via the package's DefaultServeMux side effect, so daemons
// only expose profiling when asked to).
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// StartServerWith is StartServer with the extended debug surface.
func StartServerWith(addr string, cfg MuxConfig) (*MetricsServer, error) {
	return startServer(addr, NewMuxWith(cfg))
}
