package history

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"

	"painter/internal/obs"
)

func TestWindowQueries(t *testing.T) {
	s := New(Config{Capacity: 16, Clock: TickClock(0, 1)})
	for i := 1; i <= 8; i++ {
		s.mu.Lock()
		s.tick++
		s.mu.Unlock()
		s.Push("c", float64(i*10))
	}
	w := s.Window("c", 0)
	if w.Len() != 8 {
		t.Fatalf("window len = %d, want 8", w.Len())
	}
	if v, ok := w.Last(); !ok || v != 80 {
		t.Fatalf("Last = %v,%v want 80,true", v, ok)
	}
	if d := w.Delta(); d != 70 {
		t.Fatalf("Delta = %v, want 70", d)
	}
	if r := w.Rate(); r != 10 {
		t.Fatalf("Rate = %v, want 10", r)
	}
	if m := w.Mean(); m != 45 {
		t.Fatalf("Mean = %v, want 45", m)
	}
	if q := w.Quantile(0.5); q != 40 {
		t.Fatalf("Quantile(0.5) = %v, want 40", q)
	}
	if q := w.Quantile(1); q != 80 {
		t.Fatalf("Quantile(1) = %v, want 80", q)
	}
	if q := w.Quantile(0); q != 10 {
		t.Fatalf("Quantile(0) = %v, want 10", q)
	}
	// EWMA of a constant series is the constant.
	cs := New(Config{Capacity: 8, Clock: TickClock(0, 1)})
	for i := 0; i < 5; i++ {
		cs.Push("k", 3.5)
	}
	if e := cs.Window("k", 0).EWMA(0.3); math.Abs(e-3.5) > 1e-12 {
		t.Fatalf("EWMA constant = %v, want 3.5", e)
	}
	// Last-n windowing.
	if got := s.Window("c", 3).Len(); got != 3 {
		t.Fatalf("Window(3) len = %d, want 3", got)
	}
	if d := s.Window("c", 3).Delta(); d != 20 {
		t.Fatalf("Window(3) delta = %v, want 20", d)
	}
}

func TestRingWraparound(t *testing.T) {
	s := New(Config{Capacity: 4, Clock: TickClock(0, 1)})
	for i := 1; i <= 10; i++ {
		s.Push("x", float64(i))
	}
	w := s.Window("x", 0)
	if w.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", w.Len())
	}
	want := []float64{7, 8, 9, 10}
	for i, p := range w.Points {
		if p.Val != want[i] {
			t.Fatalf("point %d = %v, want %v (oldest-first after wrap)", i, p.Val, want[i])
		}
	}
}

func TestSampleFlattensRegistries(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetBaseLabels(obs.L("tenant", "a"))
	c := reg.Counter("reqs_total", "requests")
	g := reg.Gauge("depth", "queue depth")
	h := reg.Histogram("lat_seconds", "latency")
	s := New(Config{
		Capacity: 8,
		Clock:    TickClock(100, 5),
		Regs:     func() []*obs.Registry { return []*obs.Registry{reg} },
	})

	c.Add(3)
	g.Set(2.5)
	h.Observe(0.1)
	h.Observe(0.2)
	if tick := s.Sample(); tick != 1 {
		t.Fatalf("first Sample tick = %d, want 1", tick)
	}
	c.Add(2)
	s.Sample()

	// Counter and gauge keys carry the base label.
	w := s.Window(`reqs_total{tenant="a"}`, 0)
	if w.Len() != 2 {
		t.Fatalf("counter window len = %d, want 2; names = %v", w.Len(), s.Names())
	}
	if d := w.Delta(); d != 2 {
		t.Fatalf("counter delta = %v, want 2", d)
	}
	if v, _ := s.Window(`depth{tenant="a"}`, 0).Last(); v != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", v)
	}
	// Histogram summary suffix lands before the label block.
	if v, _ := s.Window(`lat_seconds_count{tenant="a"}`, 0).Last(); v != 2 {
		t.Fatalf("hist count = %v, want 2; names = %v", v, s.Names())
	}
	for _, suffix := range []string{"_sum", "_p50", "_p99", "_max"} {
		if got := s.Window(`lat_seconds`+suffix+`{tenant="a"}`, 0).Len(); got != 2 {
			t.Fatalf("hist series %s missing", suffix)
		}
	}
	// Timestamps come from the injected clock.
	if ts := w.Points[0].TS; ts != 100 {
		t.Fatalf("first sample ts = %d, want 100", ts)
	}
}

func TestBytesDeterministic(t *testing.T) {
	build := func() *Store {
		reg := obs.NewRegistry()
		c := reg.Counter("a_total", "")
		g := reg.Gauge("b", "")
		s := New(Config{
			Capacity: 8,
			Clock:    TickClock(0, 10),
			Regs:     func() []*obs.Registry { return []*obs.Registry{reg} },
		})
		for i := 0; i < 6; i++ {
			c.Add(uint64(i))
			g.Set(float64(i) * 0.5)
			s.Sample()
		}
		return s
	}
	b1, b2 := build().Bytes(), build().Bytes()
	if len(b1) == 0 {
		t.Fatal("empty bytes")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same-sequence stores produced different bytes")
	}
}

func TestNilStoreSafe(t *testing.T) {
	var s *Store
	if s.Sample() != 0 || s.Tick() != 0 || s.Window("x", 1).Len() != 0 ||
		s.Names() != nil || s.Bytes() != nil {
		t.Fatal("nil store must no-op")
	}
	s.Push("x", 1)
}

func TestHandler(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("hits_total", "")
	g := reg.Gauge("load", "")
	s := New(Config{
		Capacity: 8,
		Clock:    TickClock(0, 1),
		Regs:     func() []*obs.Registry { return []*obs.Registry{reg} },
	})
	for i := 0; i < 4; i++ {
		c.Inc()
		g.Set(float64(i))
		s.Sample()
	}
	h := StoreHandler(s)

	get := func(url string) ResponseJSON {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d: %s", url, rec.Code, rec.Body.String())
		}
		var out ResponseJSON
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		return out
	}

	full := get("/debug/obs/history")
	if full.Tick != 4 || len(full.Series) != 2 {
		t.Fatalf("full = tick %d, %d series; want 4, 2", full.Tick, len(full.Series))
	}
	if got := len(full.Series["hits_total"].Values); got != 4 {
		t.Fatalf("hits_total points = %d, want 4", got)
	}

	matched := get("/debug/obs/history?match=hits")
	if len(matched.Series) != 1 {
		t.Fatalf("match=hits series = %d, want 1", len(matched.Series))
	}

	lastN := get("/debug/obs/history?n=2")
	if got := len(lastN.Series["load"].Values); got != 2 {
		t.Fatalf("n=2 points = %d, want 2", got)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs/history?n=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad n: code = %d, want 400", rec.Code)
	}
}
