package history

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// SeriesJSON is one series in the /debug/obs/history payload.
type SeriesJSON struct {
	Ticks  []uint64  `json:"ticks"`
	Values []float64 `json:"values"`
}

// ResponseJSON is the /debug/obs/history payload shape.
type ResponseJSON struct {
	Tick   uint64                `json:"tick"`
	Series map[string]SeriesJSON `json:"series"`
}

// Handler serves the merged JSON view of the given stores, re-collected
// on every request (tenant stores come and go). Query parameters:
//
//	?match=<prefix>  only series whose name starts with the prefix
//	?n=<N>           only the last N points per series
func Handler(stores func() []*Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		prefix := req.URL.Query().Get("match")
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		out := ResponseJSON{Series: map[string]SeriesJSON{}}
		for _, st := range stores() {
			if st == nil {
				continue
			}
			if t := st.Tick(); t > out.Tick {
				out.Tick = t
			}
			for _, name := range st.Match(prefix) {
				win := st.Window(name, n)
				sj := SeriesJSON{
					Ticks:  make([]uint64, 0, win.Len()),
					Values: make([]float64, 0, win.Len()),
				}
				for _, p := range win.Points {
					sj.Ticks = append(sj.Ticks, p.Tick)
					sj.Values = append(sj.Values, p.Val)
				}
				out.Series[name] = sj
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}

// StoreHandler is Handler over a fixed store set.
func StoreHandler(stores ...*Store) http.Handler {
	return Handler(func() []*Store { return stores })
}
