// Package history is the time-series tier of the observability stack:
// a fixed-capacity ring-buffer store sampled from obs.Registry
// snapshots on the controller tick. Where internal/obs answers "what is
// the value now", history answers "what has it been doing" — the memory
// the alert engine (internal/obs/alert) judges over.
//
// Determinism contract: with an injected clock and a deterministic
// sampling cadence (the tenant tick), two same-seed runs produce
// byte-identical series (Store.Bytes). Nothing in the store reads wall
// time unless the default clock is left in place, which daemons do and
// deterministic rigs must not.
package history

import (
	"encoding/binary"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"painter/internal/obs"
)

// DefaultCapacity is the per-series ring size when Config.Capacity is
// unset: enough for several schedule replays at tenant tick cadence,
// bounded at ~12 KB per series.
const DefaultCapacity = 512

// Point is one sample: the store tick it was taken on, the clock stamp,
// and the value.
type Point struct {
	Tick uint64  `json:"tick"`
	TS   int64   `json:"ts"`
	Val  float64 `json:"val"`
}

// series is one metric's bounded ring. Memory is allocated once at
// first sight of the series and never grows.
type series struct {
	buf     []Point
	next    int
	wrapped bool
}

func (s *series) push(p Point) {
	s.buf[s.next] = p
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.wrapped = true
	}
}

// points appends the ring's contents in insertion order to dst.
func (s *series) points(dst []Point) []Point {
	if s.wrapped {
		dst = append(dst, s.buf[s.next:]...)
	}
	return append(dst, s.buf[:s.next]...)
}

func (s *series) len() int {
	if s.wrapped {
		return len(s.buf)
	}
	return s.next
}

// Config tunes a Store.
type Config struct {
	// Capacity is the per-series ring size (default DefaultCapacity).
	Capacity int
	// Clock stamps each sample; nil means time.Now().UnixNano. Inject a
	// deterministic clock (TickClock) wherever byte-identical series
	// matter.
	Clock func() int64
	// Regs returns the registries to flatten on each Sample,
	// re-evaluated every time so dynamic registry sets stay covered.
	Regs func() []*obs.Registry
}

// TickClock returns a deterministic clock: the first call yields
// startNs, each subsequent call advances by stepNs. It is what tenant
// rigs inject so history bytes do not depend on wall time.
func TickClock(startNs, stepNs int64) func() int64 {
	var n int64
	return func() int64 {
		ts := startNs + n*stepNs
		n++
		return ts
	}
}

// Store holds one ring per series, keyed by the rendered instance name
// (base labels included, so a tenant's series are distinct from every
// other tenant's). Histograms flatten into five derived series with the
// summary suffix inserted before the label block:
// name_count{...}, name_sum{...}, name_p50{...}, name_p99{...},
// name_max{...}.
//
// All methods are safe for concurrent use; a nil Store no-ops.
type Store struct {
	mu     sync.Mutex
	cap    int
	clock  func() int64
	regs   func() []*obs.Registry
	tick   uint64
	series map[string]*series
}

// New builds a Store. A nil Regs func is allowed (Push-only stores used
// by tests).
func New(cfg Config) *Store {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Clock == nil {
		cfg.Clock = func() int64 { return time.Now().UnixNano() }
	}
	return &Store{
		cap:    cfg.Capacity,
		clock:  cfg.Clock,
		regs:   cfg.Regs,
		series: make(map[string]*series),
	}
}

// suffixKey inserts a summary suffix before the key's label block:
// "h{a="b"}" + "_p99" → "h_p99{a="b"}". This keeps prefix matching on
// the metric name meaningful for labeled series.
func suffixKey(key, suffix string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i] + suffix + key[i:]
	}
	return key + suffix
}

// Sample takes one snapshot of every registry and appends a point per
// series, advancing the store tick. Returns the tick just recorded.
func (s *Store) Sample() uint64 {
	if s == nil {
		return 0
	}
	var snaps []obs.RegistrySnapshot
	if s.regs != nil {
		for _, r := range s.regs() {
			if r != nil {
				snaps = append(snaps, r.Snapshot())
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	p := Point{Tick: s.tick, TS: s.clock()}
	for _, snap := range snaps {
		for k, v := range snap.Counters {
			s.pushLocked(k, p, float64(v))
		}
		for k, v := range snap.Gauges {
			s.pushLocked(k, p, v)
		}
		for k, h := range snap.Histograms {
			s.pushLocked(suffixKey(k, "_count"), p, float64(h.Count))
			s.pushLocked(suffixKey(k, "_sum"), p, h.Sum)
			s.pushLocked(suffixKey(k, "_p50"), p, h.P50)
			s.pushLocked(suffixKey(k, "_p99"), p, h.P99)
			s.pushLocked(suffixKey(k, "_max"), p, h.Max)
		}
	}
	return s.tick
}

// Push records a single point for one series at the current tick
// without advancing it — the hand-fed path for tests and derived
// series.
func (s *Store) Push(name string, val float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pushLocked(name, Point{Tick: s.tick, TS: s.clock()}, val)
}

func (s *Store) pushLocked(name string, p Point, val float64) {
	sr := s.series[name]
	if sr == nil {
		sr = &series{buf: make([]Point, s.cap)}
		s.series[name] = sr
	}
	p.Val = val
	sr.push(p)
}

// Tick returns the store's current tick (samples taken so far).
func (s *Store) Tick() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tick
}

// Names returns every series name, sorted.
func (s *Store) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.series))
	for k := range s.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Match returns the sorted series names with the given prefix. An empty
// prefix matches everything.
func (s *Store) Match(prefix string) []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, 8)
	for k := range s.series {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Window returns the last n points of one series (n <= 0 means all
// retained). A missing series yields an empty window.
func (s *Store) Window(name string, n int) Window {
	if s == nil {
		return Window{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[name]
	if sr == nil {
		return Window{}
	}
	pts := sr.points(make([]Point, 0, sr.len()))
	if n > 0 && len(pts) > n {
		pts = pts[len(pts)-n:]
	}
	return Window{Points: pts}
}

// Bytes serializes the store canonically (series sorted by name,
// little-endian points): two stores are equivalent iff their Bytes are
// identical. With an injected deterministic clock this is the
// twin-run determinism witness.
func (s *Store) Bytes() []byte {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.series))
	for k := range s.series {
		names = append(names, k)
	}
	sort.Strings(names)

	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u64(s.tick)
	u32(uint32(len(names)))
	for _, name := range names {
		u32(uint32(len(name)))
		b = append(b, name...)
		pts := s.series[name].points(nil)
		u32(uint32(len(pts)))
		for _, p := range pts {
			u64(p.Tick)
			u64(uint64(p.TS))
			u64(math.Float64bits(p.Val))
		}
	}
	return b
}

// Window is an immutable slice of one series, oldest first, with the
// query methods the alert engine evaluates rules over.
type Window struct {
	Points []Point
}

// Len is the number of points in the window.
func (w Window) Len() int { return len(w.Points) }

// Last returns the newest value (ok=false on an empty window).
func (w Window) Last() (float64, bool) {
	if len(w.Points) == 0 {
		return 0, false
	}
	return w.Points[len(w.Points)-1].Val, true
}

// Delta is newest minus oldest value (0 with fewer than two points).
func (w Window) Delta() float64 {
	if len(w.Points) < 2 {
		return 0
	}
	return w.Points[len(w.Points)-1].Val - w.Points[0].Val
}

// Rate is Delta per tick across the window (0 with fewer than two
// points or a zero tick span) — the per-tick growth of a counter.
func (w Window) Rate() float64 {
	if len(w.Points) < 2 {
		return 0
	}
	ticks := w.Points[len(w.Points)-1].Tick - w.Points[0].Tick
	if ticks == 0 {
		return 0
	}
	return w.Delta() / float64(ticks)
}

// Mean is the arithmetic mean of the window's values.
func (w Window) Mean() float64 {
	if len(w.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range w.Points {
		sum += p.Val
	}
	return sum / float64(len(w.Points))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the window's values by
// nearest-rank on a sorted copy.
func (w Window) Quantile(q float64) float64 {
	n := len(w.Points)
	if n == 0 {
		return 0
	}
	vals := make([]float64, n)
	for i, p := range w.Points {
		vals[i] = p.Val
	}
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return vals[idx]
}

// EWMA folds the window oldest-to-newest into an exponentially weighted
// moving average with smoothing alpha (0 < alpha ≤ 1) — the baseline
// the drift rules compare the latest sample against.
func (w Window) EWMA(alpha float64) float64 {
	if len(w.Points) == 0 {
		return 0
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	ewma := w.Points[0].Val
	for _, p := range w.Points[1:] {
		ewma = alpha*p.Val + (1-alpha)*ewma
	}
	return ewma
}
