package span

// Chrome/Perfetto trace-event export. The format is the JSON object
// flavor of the trace-event spec: {"traceEvents": [...]} where each
// finished span becomes one complete event (ph "X") with microsecond
// ts/dur. chrome://tracing and ui.perfetto.dev open the output
// directly. Encoding goes through encoding/json with struct fields and
// sorted-key maps only, so equal Record slices render byte-identically
// — the property the determinism tests pin.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
)

// ChromeEvent is one trace-event entry. Ts and Dur are microseconds
// per the spec; span identity rides in Args as zero-padded hex so the
// file survives viewers that mangle large integers.
type ChromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace-event JSON object.
type ChromeTrace struct {
	TraceEvents []ChromeEvent `json:"traceEvents"`
}

func hexID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ToChrome renders records (oldest-first, as Recorder.Snapshot yields
// them) as a ChromeTrace. The process name, when non-empty, becomes a
// process_name metadata event so viewers label the track.
func ToChrome(process string, recs []Record) ChromeTrace {
	events := make([]ChromeEvent, 0, len(recs)+1)
	if process != "" {
		events = append(events, ChromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  1,
			Tid:  1,
			Args: map[string]string{"name": process},
		})
	}
	for _, r := range recs {
		args := make(map[string]string, len(r.Attrs)+3)
		args["trace_id"] = hexID(r.TraceID)
		args["span_id"] = hexID(r.SpanID)
		if r.ParentID != 0 {
			args["parent_id"] = hexID(r.ParentID)
		}
		for _, a := range r.Attrs {
			args[a.Key] = a.Value
		}
		dur := r.DurNs / 1e3
		if dur < 1 {
			dur = 1 // trace viewers drop zero-width slices
		}
		events = append(events, ChromeEvent{
			Name: r.Name,
			Ph:   "X",
			Ts:   r.StartNs / 1e3,
			Dur:  dur,
			Pid:  1,
			// One track per trace keeps concurrent traces from stacking
			// into a single nonsensical flame; the mapping is stable.
			Tid:  int(r.TraceID%512) + 1,
			Args: args,
		})
	}
	return ChromeTrace{TraceEvents: events}
}

// WriteChrome renders records as indented trace-event JSON.
func WriteChrome(w io.Writer, process string, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ToChrome(process, recs))
}

// ParseChrome decodes trace-event JSON and validates the invariants
// the exporter promises: complete events, positive ts/dur, and span
// identity present in args. It is the schema check for round-trip
// tests and for humans sanity-checking a dump.
func ParseChrome(r io.Reader) (ChromeTrace, error) {
	var ct ChromeTrace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ct); err != nil {
		return ChromeTrace{}, fmt.Errorf("span: decode chrome trace: %w", err)
	}
	for i, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
			if ev.Name == "" {
				return ChromeTrace{}, fmt.Errorf("span: event %d has empty name", i)
			}
			if ev.Ts < 0 || ev.Dur < 1 {
				return ChromeTrace{}, fmt.Errorf("span: event %d has invalid ts/dur %d/%d", i, ev.Ts, ev.Dur)
			}
			if len(ev.Args["trace_id"]) != 16 || len(ev.Args["span_id"]) != 16 {
				return ChromeTrace{}, fmt.Errorf("span: event %d missing trace/span id args", i)
			}
		default:
			return ChromeTrace{}, fmt.Errorf("span: event %d has unexpected phase %q", i, ev.Ph)
		}
	}
	return ct, nil
}

// Dump writes the flight recorder as trace-event JSON. Nil tracers
// write a valid empty trace so -trace-dump always yields a loadable
// file.
func (t *Tracer) Dump(w io.Writer) error {
	return WriteChrome(w, t.Process(), t.Recorder().Snapshot())
}

// DumpFile writes the flight recorder to path (for the daemons'
// -trace-dump flag).
func (t *Tracer) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Dump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Handler serves the flight recorder as trace-event JSON — the
// /debug/trace endpoint. A nil tracer serves valid empty traces.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := t.Dump(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// LogArgs returns slog-style key/value pairs identifying the active
// span, or nil when there is none — callers splat it into log calls so
// lines join up with traces:
//
//	slog.Info("failover", span.LogArgs(s)...)
func LogArgs(s *Span) []any {
	if s == nil {
		return nil
	}
	return []any{"trace_id", hexID(s.traceID), "span_id", hexID(s.spanID)}
}
