package span

import (
	"testing"
)

// Derive gives each tenant its own ID stream and base attrs while all
// spans land in one shared flight recorder.
func TestDeriveSharedRecorderAndAttrs(t *testing.T) {
	clock := int64(0)
	parent := New(Config{Seed: 1, Process: "test", Clock: func() int64 { clock++; return clock }})
	d1 := parent.Derive(100, A("tenant", "red"))
	d2 := parent.Derive(200, A("tenant", "blue"))

	parent.StartRoot("parent-op").Finish()
	s1 := d1.StartRoot("op", A("k", "v"))
	s1.Finish()
	d2.StartRoot("op").Finish()

	recs := parent.Recorder().Snapshot()
	if len(recs) != 3 {
		t.Fatalf("shared recorder holds %d spans, want 3", len(recs))
	}
	byTenant := map[string]int{}
	for _, r := range recs {
		for _, a := range r.Attrs {
			if a.Key == "tenant" {
				byTenant[a.Value]++
			}
		}
	}
	if byTenant["red"] != 1 || byTenant["blue"] != 1 {
		t.Errorf("tenant attrs = %v", byTenant)
	}
	// Caller attrs ride along after the base attrs.
	var redAttrs []Attr
	for _, r := range recs {
		for _, a := range r.Attrs {
			if a.Key == "tenant" && a.Value == "red" {
				redAttrs = r.Attrs
			}
		}
	}
	if len(redAttrs) != 2 || redAttrs[0].Key != "tenant" || redAttrs[1].Key != "k" {
		t.Errorf("red span attrs = %v", redAttrs)
	}
}

func TestDeriveDeterministicDistinctIDs(t *testing.T) {
	mk := func() (uint64, uint64) {
		parent := New(Config{Seed: 7, Clock: func() int64 { return 0 }})
		a := parent.Derive(100).StartRoot("a")
		b := parent.Derive(200).StartRoot("b")
		defer a.Finish()
		defer b.Finish()
		return a.TraceID(), b.TraceID()
	}
	a1, b1 := mk()
	a2, b2 := mk()
	if a1 != a2 || b1 != b2 {
		t.Error("derived ID streams are not deterministic")
	}
	if a1 == b1 {
		t.Error("different derive seeds produced colliding IDs")
	}
}

func TestDeriveNilSafe(t *testing.T) {
	var tr *Tracer
	d := tr.Derive(1, A("tenant", "x"))
	if d != nil {
		t.Error("nil tracer should derive nil")
	}
	d.StartRoot("op").Finish() // must not panic
}
