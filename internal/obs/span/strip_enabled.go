//go:build !obsstrip

package span

// spanEnabled gates span creation at compile time. In the default
// build New returns a live tracer; see strip_stripped.go.
const spanEnabled = true
