// Package span is the causal-tracing counterpart to package obs:
// dependency-free spans with parent links and key/value attrs, built
// for the same three constraints as the metrics layer.
//
//   - Deterministic: trace and span IDs come from a seeded splitmix64
//     stream, so two runs with the same seed and the same span-creation
//     order export byte-identical traces. Tests pin the clock too
//     (Config.Clock) and diff whole exports.
//   - Nil-safe: a nil *Tracer and a nil *Span are the no-op
//     implementations. Unsampled roots return nil, so a disabled or
//     sampled-out call site pays one nil check per operation and zero
//     allocations.
//   - Strippable: building with -tags obsstrip turns New into a
//     constant-nil constructor and lets the linker drop the subsystem.
//
// Finished spans land in a bounded ring buffer (the flight recorder,
// see ring.go) holding the last N spans per process; export.go renders
// the ring as Chrome/Perfetto trace-event JSON.
package span

import (
	"sync"
	"sync/atomic"
	"time"
)

// golden is the splitmix64 increment (2^64 / phi).
const golden = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer: a bijective avalanche over the
// sequential counter state, so IDs look random but replay exactly.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A returns an Attr; it keeps instrumentation call sites short.
func A(k, v string) Attr { return Attr{Key: k, Value: v} }

// Context is the wire-portable identity of a span: enough for a remote
// process to create children that stitch into the same trace.
type Context struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real span. The ID stream
// never emits zero, so the zero Context is the canonical "no trace".
func (c Context) Valid() bool { return c.TraceID != 0 && c.SpanID != 0 }

// Config tunes a Tracer.
type Config struct {
	// Seed initializes the deterministic ID stream. Two tracers with
	// equal seeds emit identical ID sequences.
	Seed uint64
	// Sample keeps one in Sample root spans (head-based: the decision
	// is made at the root and inherited by every child, so traces are
	// never half-recorded). Values <= 1 keep every root.
	Sample int
	// Ring is the flight-recorder capacity in spans (default
	// DefaultRing).
	Ring int
	// Process names this process in exports (painterd, tm-edge, ...).
	Process string
	// Clock returns nanoseconds; nil means time.Now().UnixNano. Tests
	// inject a fake for byte-identical exports.
	Clock func() int64
}

// Tracer mints spans and owns the flight recorder. The zero value is
// not usable; use New. A nil Tracer is the no-op tracer.
type Tracer struct {
	idState atomic.Uint64 // splitmix64 counter state
	roots   atomic.Uint64 // root spans started, for head sampling
	sample  uint64
	clock   func() int64
	rec     *Recorder
	process string
	// base attrs are stamped onto every span this tracer mints (set by
	// Derive; empty on tracers built with New).
	base []Attr
}

// New builds a Tracer, or nil under -tags obsstrip (every method is
// nil-safe, so callers never need to check).
func New(cfg Config) *Tracer {
	if !spanEnabled {
		return nil
	}
	t := &Tracer{
		sample:  1,
		clock:   cfg.Clock,
		process: cfg.Process,
		rec:     NewRecorder(cfg.Ring),
	}
	if cfg.Sample > 1 {
		t.sample = uint64(cfg.Sample)
	}
	if t.clock == nil {
		t.clock = func() int64 { return time.Now().UnixNano() }
	}
	t.idState.Store(cfg.Seed)
	return t
}

// Derive returns a tracer that shares t's flight recorder, process
// name, clock, and sampling rate, but draws span IDs from its own
// stream (seeded by seed) and stamps every span it mints with attrs —
// the per-tenant tracing handle: N derived tracers feed one
// /debug/trace surface with each tenant's spans labeled. The seed must
// differ per derived tracer so ID streams do not collide; the caller
// picks it deterministically (a hash of the tenant ID). Nil-safe: a nil
// receiver derives a nil (no-op) tracer.
func (t *Tracer) Derive(seed uint64, attrs ...Attr) *Tracer {
	if t == nil {
		return nil
	}
	d := &Tracer{
		sample:  t.sample,
		clock:   t.clock,
		rec:     t.rec,
		process: t.process,
		base:    append([]Attr(nil), attrs...),
	}
	d.idState.Store(seed)
	return d
}

// nextID draws the next nonzero ID from the seeded stream.
func (t *Tracer) nextID() uint64 {
	for {
		if id := mix64(t.idState.Add(golden)); id != 0 {
			return id
		}
	}
}

// Process returns the configured process name ("" on nil).
func (t *Tracer) Process() string {
	if t == nil {
		return ""
	}
	return t.process
}

// Recorder exposes the flight recorder (nil on a nil tracer).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// StartRoot begins a new trace. Sampled-out roots return nil, which
// every Span method accepts, so callers instrument unconditionally.
func (t *Tracer) StartRoot(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	n := t.roots.Add(1)
	if t.sample > 1 && (n-1)%t.sample != 0 {
		return nil
	}
	id := t.nextID()
	return t.newSpan(name, id, id, 0, attrs)
}

// FromRemote begins a span whose parent lives in another process,
// stitching this process into the caller's trace. An invalid context
// degrades to StartRoot (with its sampling decision).
func (t *Tracer) FromRemote(ctx Context, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if !ctx.Valid() {
		return t.StartRoot(name, attrs...)
	}
	return t.newSpan(name, ctx.TraceID, t.nextID(), ctx.SpanID, attrs)
}

func (t *Tracer) newSpan(name string, traceID, spanID, parentID uint64, attrs []Attr) *Span {
	s := &Span{
		tracer:   t,
		name:     name,
		traceID:  traceID,
		spanID:   spanID,
		parentID: parentID,
		startNs:  t.clock(),
	}
	s.attrs = append(s.attrs, t.base...)
	s.attrs = append(s.attrs, attrs...)
	return s
}

// Span is one timed operation in a trace. A nil Span is the no-op
// span: every method returns immediately.
type Span struct {
	tracer   *Tracer
	name     string
	traceID  uint64
	spanID   uint64
	parentID uint64
	startNs  int64

	mu       sync.Mutex
	attrs    []Attr
	finished bool
}

// Context returns the span identity for wire propagation (zero on nil,
// which remote ends treat as "no trace").
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{TraceID: s.traceID, SpanID: s.spanID}
}

// TraceID returns the trace ID (0 on nil).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// StartChild begins a child span. Children inherit the root's sampling
// decision for free: an unsampled root is nil, and nil children of nil
// parents cost one branch.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newSpan(name, s.traceID, s.tracer.nextID(), s.spanID, attrs)
}

// SetAttr adds (or appends) a key/value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.finished {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// Finish stamps the duration and hands the span to the flight
// recorder. Second and later calls are no-ops.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	attrs := s.attrs
	s.mu.Unlock()
	end := s.tracer.clock()
	s.tracer.rec.add(Record{
		TraceID:  s.traceID,
		SpanID:   s.spanID,
		ParentID: s.parentID,
		Name:     s.name,
		StartNs:  s.startNs,
		DurNs:    end - s.startNs,
		Attrs:    attrs,
	})
}
