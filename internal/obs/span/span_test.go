package span

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// requireTracing skips tests that need a live tracer when built with
// -tags obsstrip (where New returns nil by design). TestNilSafety and
// TestRingWraparoundAndBoundedMemory's recorder paths still run there.
func requireTracing(t *testing.T) {
	t.Helper()
	if !spanEnabled {
		t.Skip("tracing compiled out (obsstrip)")
	}
}

// fakeClock is a deterministic nanosecond clock advancing a fixed step
// per reading.
func fakeClock(step int64) func() int64 {
	var now int64
	return func() int64 {
		now += step
		return now
	}
}

func buildTrace(t *Tracer) {
	root := t.StartRoot("solve", A("scale", "small"))
	for i := 0; i < 3; i++ {
		c := root.StartChild("iteration", A("i", fmt.Sprint(i)))
		g := c.StartChild("propagate")
		g.SetAttr("settled", "42")
		g.Finish()
		c.Finish()
	}
	root.Finish()
}

func TestSameSeedByteIdenticalExport(t *testing.T) {
	requireTracing(t)
	var a, b bytes.Buffer
	for i, buf := range []*bytes.Buffer{&a, &b} {
		tr := New(Config{Seed: 7, Process: "test", Clock: fakeClock(1000)})
		buildTrace(tr)
		if err := tr.Dump(buf); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if a.Len() == 0 {
		t.Fatal("empty export")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same-seed exports differ:\n%s\n---\n%s", a.String(), b.String())
	}

	// A different seed must yield different IDs (and thus bytes).
	var c bytes.Buffer
	tr := New(Config{Seed: 8, Process: "test", Clock: fakeClock(1000)})
	buildTrace(tr)
	if err := tr.Dump(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical exports")
	}
}

func TestParentLinksAndContext(t *testing.T) {
	requireTracing(t)
	tr := New(Config{Seed: 1, Clock: fakeClock(10)})
	root := tr.StartRoot("root")
	child := root.StartChild("child")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %x != root trace %x", child.TraceID(), root.TraceID())
	}
	child.Finish()
	root.Finish()
	recs := tr.Recorder().Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Finish order: child first.
	if recs[0].Name != "child" || recs[1].Name != "root" {
		t.Fatalf("unexpected order: %q, %q", recs[0].Name, recs[1].Name)
	}
	if recs[0].ParentID != recs[1].SpanID {
		t.Fatalf("child parent %x != root span %x", recs[0].ParentID, recs[1].SpanID)
	}
	if recs[1].ParentID != 0 {
		t.Fatalf("root has parent %x", recs[1].ParentID)
	}
	if recs[0].DurNs <= 0 {
		t.Fatalf("child duration %d", recs[0].DurNs)
	}
}

func TestRemoteStitching(t *testing.T) {
	requireTracing(t)
	edge := New(Config{Seed: 2, Clock: fakeClock(5)})
	pop := New(Config{Seed: 3, Clock: fakeClock(5)})
	s := edge.StartRoot("edge.op")
	remote := pop.FromRemote(s.Context(), "pop.op")
	if remote.TraceID() != s.TraceID() {
		t.Fatalf("remote trace %x != origin %x", remote.TraceID(), s.TraceID())
	}
	remote.Finish()
	rec := pop.Recorder().Snapshot()[0]
	if rec.ParentID != s.Context().SpanID {
		t.Fatalf("remote parent %x != origin span %x", rec.ParentID, s.Context().SpanID)
	}
	// Invalid context degrades to a root.
	orphan := pop.FromRemote(Context{}, "pop.solo")
	orphan.Finish()
	recs := pop.Recorder().Snapshot()
	if recs[1].ParentID != 0 || recs[1].TraceID == s.TraceID() {
		t.Fatalf("invalid context did not start a fresh root: %+v", recs[1])
	}
}

func TestHeadSampling(t *testing.T) {
	requireTracing(t)
	tr := New(Config{Seed: 4, Sample: 4, Clock: fakeClock(1)})
	kept := 0
	for i := 0; i < 40; i++ {
		s := tr.StartRoot("op")
		// Children inherit the decision via the nil span.
		c := s.StartChild("child")
		c.Finish()
		s.Finish()
		if s != nil {
			kept++
		}
	}
	if kept != 10 {
		t.Fatalf("sampled %d of 40 roots, want 10", kept)
	}
	if got := len(tr.Recorder().Snapshot()); got != 20 {
		t.Fatalf("recorded %d spans, want 20 (10 roots + 10 children)", got)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.StartRoot("x", A("k", "v"))
	if s != nil {
		t.Fatal("nil tracer minted a span")
	}
	c := s.StartChild("y")
	c.SetAttr("a", "b")
	c.Finish()
	s.Finish()
	if s.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	if tr.Recorder() != nil || tr.Recorder().Snapshot() != nil || tr.Recorder().Cap() != 0 {
		t.Fatal("nil recorder misbehaved")
	}
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatalf("nil tracer export: %v", err)
	}
	if _, err := ParseChrome(&buf); err != nil {
		t.Fatalf("nil tracer export is not valid trace JSON: %v", err)
	}
	if LogArgs(nil) != nil {
		t.Fatal("LogArgs(nil) != nil")
	}
}

func TestRingWraparoundAndBoundedMemory(t *testing.T) {
	requireTracing(t)
	const size = 8
	tr := New(Config{Seed: 5, Ring: size, Clock: fakeClock(1)})
	rec := tr.Recorder()
	for i := 0; i < 10*size; i++ {
		s := tr.StartRoot(fmt.Sprintf("op-%d", i))
		s.Finish()
	}
	snap := rec.Snapshot()
	if len(snap) != size {
		t.Fatalf("ring holds %d, want capacity %d", len(snap), size)
	}
	if rec.Cap() != size {
		t.Fatalf("ring capacity grew to %d", rec.Cap())
	}
	if rec.Total() != 10*size {
		t.Fatalf("total %d, want %d", rec.Total(), 10*size)
	}
	// Oldest-first snapshot of the most recent `size` spans.
	for i, r := range snap {
		want := fmt.Sprintf("op-%d", 10*size-size+i)
		if r.Name != want {
			t.Fatalf("snap[%d] = %q, want %q", i, r.Name, want)
		}
	}
	rec.Reset()
	if len(rec.Snapshot()) != 0 || rec.Total() != 0 {
		t.Fatal("reset did not empty the ring")
	}
}

func TestChromeSchemaRoundTrip(t *testing.T) {
	requireTracing(t)
	tr := New(Config{Seed: 6, Process: "roundtrip", Clock: fakeClock(250)})
	buildTrace(tr)
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	ct, err := ParseChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("export failed its own schema check: %v\n%s", err, buf.String())
	}
	recs := tr.Recorder().Snapshot()
	// One metadata event plus one complete event per record.
	if len(ct.TraceEvents) != len(recs)+1 {
		t.Fatalf("%d events for %d records", len(ct.TraceEvents), len(recs))
	}
	if ct.TraceEvents[0].Ph != "M" || ct.TraceEvents[0].Args["name"] != "roundtrip" {
		t.Fatalf("missing process_name metadata: %+v", ct.TraceEvents[0])
	}
	for i, r := range recs {
		ev := ct.TraceEvents[i+1]
		if ev.Name != r.Name {
			t.Fatalf("event %d name %q != record %q", i, ev.Name, r.Name)
		}
		if ev.Args["trace_id"] != hexID(r.TraceID) || ev.Args["span_id"] != hexID(r.SpanID) {
			t.Fatalf("event %d ids %v != record %x/%x", i, ev.Args, r.TraceID, r.SpanID)
		}
		if ev.Ts != r.StartNs/1e3 {
			t.Fatalf("event %d ts %d != %d", i, ev.Ts, r.StartNs/1e3)
		}
	}
	// Attr made it into args.
	found := false
	for _, ev := range ct.TraceEvents {
		if ev.Name == "propagate" && ev.Args["settled"] == "42" {
			found = true
		}
	}
	if !found {
		t.Fatal("propagate span lost its settled attr")
	}

	// Re-encoding the parsed trace must also validate (round-trip).
	var buf2 bytes.Buffer
	if err := WriteChrome(&buf2, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseChrome(&buf2); err != nil {
		t.Fatalf("empty trace fails schema: %v", err)
	}

	// Corrupted input must be rejected.
	bad := strings.Replace(buf.String(), `"ph": "X"`, `"ph": "Q"`, 1)
	if _, err := ParseChrome(strings.NewReader(bad)); err == nil {
		t.Fatal("ParseChrome accepted an invalid phase")
	}
}

func TestDoubleFinishAndLateAttr(t *testing.T) {
	requireTracing(t)
	tr := New(Config{Seed: 9, Clock: fakeClock(3)})
	s := tr.StartRoot("once")
	s.Finish()
	s.SetAttr("late", "ignored")
	s.Finish()
	recs := tr.Recorder().Snapshot()
	if len(recs) != 1 {
		t.Fatalf("double finish recorded %d spans", len(recs))
	}
	for _, a := range recs[0].Attrs {
		if a.Key == "late" {
			t.Fatal("attr added after Finish was recorded")
		}
	}
}
