//go:build obsstrip

package span

// Under -tags obsstrip New returns nil, every call site short-circuits
// on the nil receiver, and the linker drops the recording machinery.
const spanEnabled = false
