package span

import "sync"

// DefaultRing is the flight-recorder capacity when Config.Ring is
// unset: large enough to hold several solve iterations or a few
// seconds of TM probing, small enough (~a few hundred KB) to keep
// always-on.
const DefaultRing = 4096

// Record is one finished span as stored by the flight recorder and
// rendered by the exporters. It is plain data — safe to copy, sort,
// and marshal.
type Record struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	Name     string
	StartNs  int64
	DurNs    int64
	Attrs    []Attr
}

// Recorder is the bounded flight recorder: a fixed-capacity ring of
// the most recent finished spans. Memory is bounded by construction —
// the backing array is allocated once and never grows; old spans are
// overwritten in place. A nil Recorder is the no-op recorder.
type Recorder struct {
	mu      sync.Mutex
	buf     []Record
	next    int    // index the next record lands in
	wrapped bool   // buf has been filled at least once
	total   uint64 // records ever added (wraparound telemetry)
}

// NewRecorder builds a ring holding the last `size` spans (size <= 0
// means DefaultRing).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRing
	}
	return &Recorder{buf: make([]Record, size)}
}

// Cap returns the fixed ring capacity (0 on nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns how many spans were ever recorded, including those
// already overwritten (0 on nil).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

func (r *Recorder) add(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Snapshot copies the ring contents oldest-first. The result aliases
// nothing in the ring, so callers may hold it across further writes.
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Record, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Reset empties the ring without freeing the backing array.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	for i := range r.buf {
		r.buf[i] = Record{}
	}
	r.next, r.wrapped, r.total = 0, false, 0
	r.mu.Unlock()
}
