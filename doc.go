// Package painter is the root of the PAINTER reproduction: ingress
// traffic engineering and routing for enterprise cloud networks
// (Koch et al., ACM SIGCOMM 2023).
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory), runnable binaries under cmd/, and worked examples
// under examples/. The benchmarks in bench_test.go regenerate every
// table and figure of the paper's evaluation; EXPERIMENTS.md records
// paper-vs-measured outcomes.
package painter
