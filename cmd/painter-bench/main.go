// Command painter-bench regenerates the paper's tables and figures on
// the simulated substrate. Each experiment prints the same rows/series
// the paper reports.
//
// Usage:
//
//	painter-bench -list                   # show experiment ids
//	painter-bench -exp fig6a              # one experiment
//	painter-bench -exp all                # everything (slow at -scale azure)
//	painter-bench -exp fig6b -scale peering -seed 7 -iters 3
//	painter-bench -exp fig6a -metrics-dump obs.jsonl
//	painter-bench -exp all -scale azure -skip-slow   # sweeps become SKIP lines
//	painter-bench -exp all -time-budget 5m           # stop starting new experiments after 5m
//	painter-bench -exp scale -scale-out BENCH_SCALE.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"painter/internal/benchmeta"
	"painter/internal/bgp"
	"painter/internal/experiments"
	"painter/internal/obs"
	"painter/internal/tenant"
)

// runCtx carries shared state into experiment run functions.
type runCtx struct {
	env   *experiments.Env
	seed  int64
	iters int
	// resolveOut, when set, makes the resolve experiment write its
	// result as JSON (BENCH_RESOLVE.json).
	resolveOut string
	// scaleOut, when set, makes the scale experiment write its result
	// as JSON (BENCH_SCALE.json).
	scaleOut string
	// deltaOut, when set, makes the delta experiment write its result
	// as JSON (BENCH_DELTA.json).
	deltaOut string
	// tenantsOut, when set, makes the tenants experiment write its
	// result as JSON (BENCH_TENANTS.json).
	tenantsOut string
	// detectOut, when set, makes the detect experiment write its result
	// as JSON (BENCH_DETECT.json).
	detectOut string
	// datapathOut, when set, makes the datapath experiment write its
	// result as JSON (BENCH_DATAPATH.json).
	datapathOut string
	// workers is the solver worker count for the scale sweep.
	workers int
	// fig6aRows is cached so fig14 (a re-projection of the same sweep)
	// reuses fig6a's rows instead of re-solving.
	fig6aRows []experiments.Fig6aResult
}

func (c *runCtx) fig6a() ([]experiments.Fig6aResult, error) {
	if c.fig6aRows == nil {
		rows, err := experiments.RunFig6a(c.env, nil, c.iters)
		if err != nil {
			return nil, err
		}
		c.fig6aRows = rows
	}
	return c.fig6aRows, nil
}

// experiment is one reproducible figure/table.
type experiment struct {
	id       string
	desc     string
	needsEnv bool
	// slow marks experiments that run full solver sweeps — the ones
	// -skip-slow elides and the time budget guards, so `-exp all
	// -scale azure` degrades to explicit SKIP lines instead of hanging.
	slow bool
	run  func(c *runCtx) error
}

// experimentList holds every experiment in run order. fig6a precedes
// fig14 so an "all" run computes the shared sweep once.
var experimentList = []experiment{
	{"fig3", "latency-vs-geodistance analysis of the measurement corpus", false, false, func(c *runCtx) error {
		an, err := experiments.RunFig3()
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig3Table(an))
		return nil
	}},
	{"fig8", "prefix-generalization model comparison", false, false, func(c *runCtx) error {
		fmt.Println(experiments.Fig8Table(experiments.RunFig8()))
		return nil
	}},
	{"fig10", "TM failover timeline on a live UDP edge/PoP pair", false, false, func(c *runCtx) error {
		res, err := experiments.RunFig10(experiments.DefaultFig10Config())
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig10Table(res))
		return nil
	}},
	{"fig6a", "median latency improvement vs prefix budget", true, true, func(c *runCtx) error {
		rows, err := c.fig6a()
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig6aTable(rows))
		return nil
	}},
	{"fig14", "per-UG improvement distribution (reuses the fig6a sweep)", true, true, func(c *runCtx) error {
		rows, err := c.fig6a()
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig14Table(rows))
		return nil
	}},
	{"fig6b", "improvement vs number of PoPs", true, true, func(c *runCtx) error {
		rows, err := experiments.RunFig6b(c.env, nil, c.iters)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig6bTable(rows))
		return nil
	}},
	{"fig6c", "improvement vs learning iterations at a fixed budget", true, true, func(c *runCtx) error {
		budget := c.env.Budgets([]float64{0.1})[0]
		rows, err := experiments.RunFig6c(c.env, budget, 4)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig6cTable(rows))
		return nil
	}},
	{"fig7", "latency CDFs at small prefix budgets", true, true, func(c *runCtx) error {
		budgets := c.env.Budgets([]float64{0.002, 0.021})
		pts, err := experiments.RunFig7(c.env, budgets, 25, c.iters)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig7Table(pts))
		return nil
	}},
	{"fig9a", "anycast vs unicast ingress latency", true, false, func(c *runCtx) error {
		rows, err := experiments.RunFig9a(c.env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig9aTable(rows))
		return nil
	}},
	{"fig9b", "PAINTER vs anycast improvement by budget", true, true, func(c *runCtx) error {
		rows, err := experiments.RunFig9b(c.env, nil, c.iters)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig9bTable(rows))
		return nil
	}},
	{"fig11a", "failover latency inflation to the next-best ingress", true, false, func(c *runCtx) error {
		res, err := experiments.RunFig11a(c.env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig11aTable(res))
		return nil
	}},
	{"fig11b", "ingress diversity under failure", true, false, func(c *runCtx) error {
		res, err := experiments.RunFig11b(c.env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig11bTable(res))
		return nil
	}},
	{"fig12a", "latency during PoP maintenance", true, false, func(c *runCtx) error {
		rows, err := experiments.RunFig12a(c.env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig12aTable(rows))
		return nil
	}},
	{"fig12b", "latency during peering maintenance", true, false, func(c *runCtx) error {
		rows, err := experiments.RunFig12b(c.env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig12bTable(rows))
		return nil
	}},
	{"fig15a", "update-rate sensitivity (announcement churn)", true, true, func(c *runCtx) error {
		rows, err := experiments.RunFig15a(c.env, nil, 1)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig15aTable(rows))
		return nil
	}},
	{"chaos", "randomized failure injection with TM failover", true, true, func(c *runCtx) error {
		res, err := experiments.RunChaosFailover(c.env, experiments.ChaosFailoverConfig{Seed: c.seed})
		if err != nil {
			return err
		}
		fmt.Println(res.Table())
		return nil
	}},
	{"resolve", "incremental repair vs full re-solve under single-event churn", true, true, func(c *runCtx) error {
		res, err := experiments.RunResolveBench(c.env, experiments.ResolveBenchConfig{Seed: c.seed})
		if err != nil {
			return err
		}
		fmt.Println(res.Table())
		if c.resolveOut != "" {
			res.Meta = benchmeta.Collect()
			if err := res.WriteJSON(c.resolveOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", c.resolveOut)
		}
		return nil
	}},
	{"delta", "delta vs full BGP propagation by changed-catchment size", true, true, func(c *runCtx) error {
		res, err := experiments.RunDeltaBench(c.env, experiments.DeltaBenchConfig{Seed: c.seed})
		if err != nil {
			return err
		}
		fmt.Println(res.Table())
		if c.deltaOut != "" {
			res.Meta = benchmeta.Collect()
			if err := res.WriteJSON(c.deltaOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", c.deltaOut)
		}
		return nil
	}},
	{"tenants", "multi-tenant steady-state churn: events/sec and sync latency vs tenant count", false, true, func(c *runCtx) error {
		res, err := tenant.RunBench(tenant.BenchConfig{Seed: c.seed})
		if err != nil {
			return err
		}
		fmt.Println(res.Table())
		if c.tenantsOut != "" {
			res.Meta = benchmeta.Collect()
			if err := res.WriteJSON(c.tenantsOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", c.tenantsOut)
		}
		return nil
	}},
	{"detect", "catchment-drift detection latency under PoP outages (twin-run determinism check)", true, true, func(c *runCtx) error {
		res, err := experiments.RunDetectBench(c.env, experiments.DetectBenchConfig{Seed: c.seed})
		if err != nil {
			return err
		}
		fmt.Println(res.Table())
		if c.detectOut != "" {
			res.Meta = benchmeta.Collect()
			if err := res.WriteJSON(c.detectOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", c.detectOut)
		}
		return nil
	}},
	{"datapath", "TM datapath pps (batched vs portable vs GRE) + failover at 10⁵ flows", false, false, func(c *runCtx) error {
		res, err := experiments.RunDatapathBench(experiments.DatapathBenchConfig{Seed: c.seed})
		if err != nil {
			return err
		}
		fmt.Println(res.Table())
		if c.datapathOut != "" {
			res.Meta = benchmeta.Collect()
			if err := res.WriteJSON(c.datapathOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", c.datapathOut)
		}
		return nil
	}},
	{"scale", "solve wall-clock and memory across small/peering/azure", false, true, func(c *runCtx) error {
		rep, err := experiments.RunScaleBench(experiments.ScaleBenchConfig{
			Seed: c.seed, Workers: c.workers,
		})
		if err != nil {
			return err
		}
		fmt.Println(rep.Table())
		if c.scaleOut != "" {
			rep.Meta = benchmeta.Collect()
			if err := rep.WriteJSON(c.scaleOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", c.scaleOut)
		}
		return nil
	}},
	{"validation", "policy-compliance validation of simulated routing", true, false, func(c *runCtx) error {
		v, err := experiments.RunComplianceValidation(c.env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.ComplianceValidationTable(v))
		return nil
	}},
	{"ablations", "component ablations at a fixed budget", true, true, func(c *runCtx) error {
		budget := c.env.Budgets([]float64{0.03})[0]
		rows, err := experiments.RunAblations(c.env, budget)
		if err != nil {
			return err
		}
		fmt.Println(experiments.AblationTable(rows))
		return nil
	}},
	{"fig15b", "prefix-count sensitivity (announcement churn)", true, true, func(c *runCtx) error {
		rows, err := experiments.RunFig15b(c.env, nil, 1)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig15bTable(rows))
		return nil
	}},
}

func main() {
	var (
		expName = flag.String("exp", "all", `experiment id(s), comma-separated, or "all" (see -list)`)
		scale   = flag.String("scale", "peering", "environment scale: small, peering, azure")
		seed    = flag.Int64("seed", 7, "world seed")
		iters   = flag.Int("iters", 2, "orchestrator learning iterations")
		list    = flag.Bool("list", false, "print experiment ids with descriptions and exit")
		dump    = flag.String("metrics-dump", "", `append one JSON obs snapshot per experiment to this file ("-" = stdout)`)
		resOut  = flag.String("resolve-out", "", "write the resolve experiment's result as JSON to this file")
		scOut   = flag.String("scale-out", "", "write the scale experiment's result as JSON to this file")
		dltOut  = flag.String("delta-out", "", "write the delta experiment's result as JSON to this file")
		tntOut  = flag.String("tenants-out", "", "write the tenants experiment's result as JSON to this file")
		detOut  = flag.String("detect-out", "", "write the detect experiment's result as JSON to this file")
		dpOut   = flag.String("datapath-out", "", "write the datapath experiment's result as JSON to this file")
		workers = flag.Int("workers", 0, "solver worker count for the scale sweep (0 = GOMAXPROCS)")
		skip    = flag.Bool("skip-slow", false, "skip solver-sweep experiments (explicit SKIP lines)")
		budget  = flag.Duration("time-budget", 0, "stop starting new experiments once this much wall time has elapsed (0 = unlimited)")
	)
	flag.Parse()

	if *list {
		for _, e := range experimentList {
			fmt.Printf("%-11s %s\n", e.id, e.desc)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.ScaleSmall
	case "peering":
		sc = experiments.ScalePEERING
	case "azure":
		sc = experiments.ScaleAzure
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	known := map[string]bool{}
	for _, e := range experimentList {
		known[e.id] = true
	}
	wants := map[string]bool{}
	for _, e := range strings.Split(*expName, ",") {
		id := strings.TrimSpace(e)
		if id != "all" && !known[id] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		wants[id] = true
	}
	all := wants["all"]
	want := func(id string) bool { return all || wants[id] }

	// The bench registry collects bgp.Propagate instruments; with
	// -metrics-dump each experiment appends its merged snapshot.
	reg := obs.NewRegistry()
	bgp.InstrumentPropagate(reg)
	var dumpFile *os.File
	if *dump == "-" {
		dumpFile = os.Stdout
	} else if *dump != "" {
		f, err := os.OpenFile(*dump, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dumpFile = f
	}

	ctx := &runCtx{seed: *seed, iters: *iters, resolveOut: *resOut,
		scaleOut: *scOut, deltaOut: *dltOut, tenantsOut: *tntOut,
		detectOut: *detOut, datapathOut: *dpOut, workers: *workers}
	needEnv := false
	for _, e := range experimentList {
		if e.needsEnv && want(e.id) && !(*skip && e.slow) {
			needEnv = true
		}
	}
	if needEnv {
		fmt.Fprintf(os.Stderr, "building %s-scale environment (seed %d)...\n", sc, *seed)
		start := time.Now()
		env, err := experiments.NewEnv(sc, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "environment ready in %v: %d PoPs, %d peerings, %d UGs\n",
			time.Since(start).Truncate(time.Millisecond),
			len(env.Deploy.PoPs), len(env.Deploy.AllPeeringIDs()), env.UGs.Len())
		ctx.env = env
	}

	runStart := time.Now()
	for _, e := range experimentList {
		if !want(e.id) {
			continue
		}
		if *skip && e.slow {
			fmt.Fprintf(os.Stderr, "SKIP %s (slow experiment, -skip-slow)\n", e.id)
			continue
		}
		if *budget > 0 && time.Since(runStart) > *budget {
			fmt.Fprintf(os.Stderr, "SKIP %s (time budget %v exhausted)\n", e.id, *budget)
			continue
		}
		start := time.Now()
		if err := e.run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", e.id, elapsed.Truncate(time.Millisecond))
		if dumpFile != nil {
			if err := writeDump(dumpFile, e.id, elapsed, ctx, reg); err != nil {
				fatal(err)
			}
		}
	}
}

// writeDump appends one JSON line: the experiment id, wall time, and
// the merged obs snapshot (bench registry + the world's, when built).
func writeDump(f *os.File, id string, elapsed time.Duration, ctx *runCtx, reg *obs.Registry) error {
	snaps := []obs.RegistrySnapshot{reg.Snapshot()}
	if ctx.env != nil {
		snaps = append(snaps, ctx.env.World.Obs().Snapshot())
	}
	rec := struct {
		Experiment string               `json:"experiment"`
		ElapsedSec float64              `json:"elapsed_sec"`
		Obs        obs.RegistrySnapshot `json:"obs"`
	}{id, elapsed.Seconds(), obs.MergeSnapshots(snaps...)}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = f.Write(b)
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
