// Command painter-bench regenerates the paper's tables and figures on
// the simulated substrate. Each experiment prints the same rows/series
// the paper reports.
//
// Usage:
//
//	painter-bench -exp fig6a              # one experiment
//	painter-bench -exp all                # everything (slow at -scale azure)
//	painter-bench -exp fig6b -scale peering -seed 7 -iters 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"painter/internal/experiments"
)

func main() {
	var (
		expName = flag.String("exp", "all", "experiment id (fig3, fig6a, fig6b, fig6c, fig7, fig8, fig9a, fig9b, fig10, fig11a, fig11b, fig12a, fig12b, fig14, fig15a, fig15b, chaos, ablations, validation, all)")
		scale   = flag.String("scale", "peering", "environment scale: small, peering, azure")
		seed    = flag.Int64("seed", 7, "world seed")
		iters   = flag.Int("iters", 2, "orchestrator learning iterations")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.ScaleSmall
	case "peering":
		sc = experiments.ScalePEERING
	case "azure":
		sc = experiments.ScaleAzure
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	wants := map[string]bool{}
	for _, e := range strings.Split(*expName, ",") {
		wants[strings.TrimSpace(e)] = true
	}
	all := wants["all"]
	want := func(name string) bool { return all || wants[name] }

	// Experiments that need no environment.
	if want("fig3") {
		timed("fig3", func() error {
			an, err := experiments.RunFig3()
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig3Table(an))
			return nil
		})
	}
	if want("fig8") {
		fmt.Println(experiments.Fig8Table(experiments.RunFig8()))
	}
	if want("fig10") {
		timed("fig10", func() error {
			res, err := experiments.RunFig10(experiments.DefaultFig10Config())
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig10Table(res))
			return nil
		})
	}

	needEnv := false
	for _, n := range []string{"fig6a", "fig6b", "fig6c", "fig7", "fig9a", "fig9b",
		"fig11a", "fig11b", "fig12a", "fig12b", "fig14", "fig15a", "fig15b", "chaos", "ablations", "validation"} {
		if want(n) {
			needEnv = true
		}
	}
	if !needEnv {
		return
	}

	fmt.Fprintf(os.Stderr, "building %s-scale environment (seed %d)...\n", sc, *seed)
	start := time.Now()
	env, err := experiments.NewEnv(sc, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v: %d PoPs, %d peerings, %d UGs\n",
		time.Since(start).Truncate(time.Millisecond),
		len(env.Deploy.PoPs), len(env.Deploy.AllPeeringIDs()), env.UGs.Len())

	var fig6aRows []experiments.Fig6aResult
	if want("fig6a") || want("fig14") {
		timed("fig6a", func() error {
			rows, err := experiments.RunFig6a(env, nil, *iters)
			if err != nil {
				return err
			}
			fig6aRows = rows
			fmt.Println(experiments.Fig6aTable(rows))
			return nil
		})
	}
	if want("fig14") && fig6aRows != nil {
		fmt.Println(experiments.Fig14Table(fig6aRows))
	}
	if want("fig6b") {
		timed("fig6b", func() error {
			rows, err := experiments.RunFig6b(env, nil, *iters)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig6bTable(rows))
			return nil
		})
	}
	if want("fig6c") {
		timed("fig6c", func() error {
			budget := env.Budgets([]float64{0.1})[0]
			rows, err := experiments.RunFig6c(env, budget, 4)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig6cTable(rows))
			return nil
		})
	}
	if want("fig7") {
		timed("fig7", func() error {
			budgets := env.Budgets([]float64{0.002, 0.021})
			pts, err := experiments.RunFig7(env, budgets, 25, *iters)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig7Table(pts))
			return nil
		})
	}
	if want("fig9a") {
		timed("fig9a", func() error {
			rows, err := experiments.RunFig9a(env)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig9aTable(rows))
			return nil
		})
	}
	if want("fig9b") {
		timed("fig9b", func() error {
			rows, err := experiments.RunFig9b(env, nil, *iters)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig9bTable(rows))
			return nil
		})
	}
	if want("fig11a") {
		timed("fig11a", func() error {
			res, err := experiments.RunFig11a(env)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig11aTable(res))
			return nil
		})
	}
	if want("fig11b") {
		timed("fig11b", func() error {
			res, err := experiments.RunFig11b(env)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig11bTable(res))
			return nil
		})
	}
	if want("fig12a") {
		timed("fig12a", func() error {
			rows, err := experiments.RunFig12a(env)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig12aTable(rows))
			return nil
		})
	}
	if want("fig12b") {
		timed("fig12b", func() error {
			rows, err := experiments.RunFig12b(env)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig12bTable(rows))
			return nil
		})
	}
	if want("fig15a") {
		timed("fig15a", func() error {
			rows, err := experiments.RunFig15a(env, nil, 1)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig15aTable(rows))
			return nil
		})
	}
	if want("chaos") {
		timed("chaos", func() error {
			res, err := experiments.RunChaosFailover(env, experiments.ChaosFailoverConfig{Seed: *seed})
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
			return nil
		})
	}
	if want("validation") {
		timed("validation", func() error {
			v, err := experiments.RunComplianceValidation(env)
			if err != nil {
				return err
			}
			fmt.Println(experiments.ComplianceValidationTable(v))
			return nil
		})
	}
	if want("ablations") {
		timed("ablations", func() error {
			budget := env.Budgets([]float64{0.03})[0]
			rows, err := experiments.RunAblations(env, budget)
			if err != nil {
				return err
			}
			fmt.Println(experiments.AblationTable(rows))
			return nil
		})
	}
	if want("fig15b") {
		timed("fig15b", func() error {
			rows, err := experiments.RunFig15b(env, nil, 1)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig15bTable(rows))
			return nil
		})
	}
}

func timed(name string, f func() error) {
	start := time.Now()
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, time.Since(start).Truncate(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
