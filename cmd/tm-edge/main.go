// Command tm-edge runs a Traffic Manager edge proxy: the cloud-edge
// network stack component that probes every available tunnel
// destination, steers new flows onto the best path, and fails over at
// RTT timescales when a prefix is withdrawn (§3.2).
//
// Destinations come either from repeated -dest flags or by resolving a
// service from a bootstrap TM-PoP:
//
//	tm-edge -resolve 127.0.0.1:4000 -service teleconf
//	tm-edge -dest 127.0.0.1:4000,1,anycast -dest 127.0.0.1:4001,1,gre
//
// With -demo, the edge generates a probe flow and prints per-second
// status lines (selected destination, per-destination RTTs) — a live
// miniature of Fig. 10. With -trace-sample, failover chains are traced
// end to end (probe silence → dead → reselect → repin, stitched with
// the PoP's re-home via trace context on the wire) and log lines carry
// the failover's trace ID.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"net/http"

	"painter/internal/daemon"
	"painter/internal/obs"
	"painter/internal/obs/alert"
	"painter/internal/obs/history"
	"painter/internal/tm"
	"painter/internal/tmproto"
)

type destList []tmproto.Destination

func (d *destList) String() string { return fmt.Sprintf("%d destinations", len(*d)) }

func (d *destList) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) < 2 {
		return fmt.Errorf("want addr:port,popid[,anycast][,gre], got %q", v)
	}
	ap, err := netip.ParseAddrPort(parts[0])
	if err != nil {
		return err
	}
	pop, err := strconv.ParseUint(parts[1], 10, 32)
	if err != nil {
		return err
	}
	dest := tmproto.Destination{Addr: ap.Addr(), Port: ap.Port(), PoP: uint32(pop)}
	for _, opt := range parts[2:] {
		switch opt {
		case "anycast":
			dest.Anycast = true
		case "gre":
			dest.GRE = true
		default:
			return fmt.Errorf("unknown destination option %q (want anycast or gre)", opt)
		}
	}
	*d = append(*d, dest)
	return nil
}

func main() {
	var dests destList
	var (
		resolve  = flag.String("resolve", "", "bootstrap TM-PoP address to resolve destinations from")
		service  = flag.String("service", "default", "service name for resolution")
		probeIv  = flag.Duration("probe-interval", 50*time.Millisecond, "probe cadence per destination")
		demo     = flag.Bool("demo", false, "send a demo flow and print per-second status")
		duration = flag.Duration("duration", 0, "exit after this long (0 = run until signal)")
		metrics  = flag.String("metrics-listen", "", "HTTP address for /metrics, /debug/obs, /debug/obs/history, /alerts, /debug/trace (empty = off)")
		sampleIv = flag.Duration("history-interval", time.Second, "history sampling and alert evaluation cadence")
		sockets  = flag.Int("sockets", 0, "SO_REUSEPORT datapath sockets (0 = one per CPU, capped)")
		batch    = flag.Int("batch", 0, "datagrams per syscall (0 = 32; 1 = portable single-packet path)")
	)
	flag.Var(&dests, "dest", "tunnel destination (addr:port,popid[,anycast][,gre]); repeatable")
	of := daemon.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := of.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tracer := of.Tracer("tm-edge")

	reg := obs.NewRegistry()
	cfg := tm.DefaultEdgeConfig()
	cfg.ProbeInterval = *probeIv
	cfg.Destinations = dests
	cfg.Sockets = *sockets
	cfg.Batch = *batch
	cfg.Obs = reg
	cfg.Tracer = tracer
	cfg.OnEvent = func(ev tm.Event) {
		switch ev.Kind {
		case tm.EventSelected:
			prev := "(none)"
			if ev.Prev != nil {
				prev = fmt.Sprintf("%s:%d", ev.Prev.Addr, ev.Prev.Port)
			}
			logger.Info("selected destination", append([]any{
				slog.String("dest", fmt.Sprintf("%s:%d", ev.Dest.Addr, ev.Dest.Port)),
				slog.Uint64("pop", uint64(ev.Dest.PoP)),
				slog.Duration("rtt", ev.RTT.Truncate(time.Microsecond)),
				slog.String("prev", prev),
			}, daemon.TraceAttrs(ev.Trace)...)...)
		case tm.EventDestDead:
			logger.Warn("destination dead", append([]any{
				slog.String("dest", fmt.Sprintf("%s:%d", ev.Dest.Addr, ev.Dest.Port)),
				slog.Uint64("pop", uint64(ev.Dest.PoP)),
				slog.Duration("silence", ev.SinceLastReply.Truncate(time.Millisecond)),
			}, daemon.TraceAttrs(ev.Trace)...)...)
		case tm.EventDestAlive:
			logger.Info("destination alive",
				slog.String("dest", fmt.Sprintf("%s:%d", ev.Dest.Addr, ev.Dest.Port)),
				slog.Uint64("pop", uint64(ev.Dest.PoP)),
				slog.Duration("rtt", ev.RTT.Truncate(time.Microsecond)))
		}
	}
	if *demo {
		cfg.OnReturn = func(flow tmproto.FlowKey, payload []byte) {
			logger.Info("return traffic", "flow", flow.String(), "bytes", len(payload))
		}
	}

	edge, err := tm.NewEdge(cfg)
	if err != nil {
		logger.Error("start failed", "err", err)
		os.Exit(1)
	}
	defer edge.Close()
	if *resolve != "" {
		if err := edge.ResolveFrom(*resolve, *service, 3*time.Second); err != nil {
			logger.Error("resolve failed", "from", *resolve, "err", err)
			os.Exit(1)
		}
		logger.Info("resolved destinations",
			"count", len(edge.Status()), "service", *service, "from", *resolve)
	}
	if len(edge.Status()) == 0 {
		logger.Error("no destinations: use -dest or -resolve")
		os.Exit(1)
	}
	logger.Info("up", "addr", edge.Addr(), "destinations", len(edge.Status()),
		"tracing", tracer != nil)

	// History + blackout detection: sample the registry on a fixed
	// cadence and judge the probe-blackout rule over the counters —
	// replies flatlining while sends advance means every destination
	// went silent at once.
	hist := history.New(history.Config{
		Regs: func() []*obs.Registry { return []*obs.Registry{reg} },
	})
	eng := alert.NewEngine(hist, []alert.Rule{alert.ProbeBlackoutRule(5, 2)},
		alert.Options{Logger: logger, Tracer: tracer})

	var ms *obs.MetricsServer
	if *metrics != "" {
		ms, err = obs.StartServerWith(*metrics, obs.MuxConfig{
			Regs: []*obs.Registry{reg}, Trace: tracer, Pprof: of.Pprof,
			Extra: map[string]http.Handler{
				"/debug/obs/history": history.StoreHandler(hist),
				"/alerts":            alert.StatesHandler(eng),
			},
		})
		if err != nil {
			logger.Error("metrics listen failed", "err", err)
			os.Exit(1)
		}
		logger.Info("metrics up", "url", "http://"+ms.Addr()+"/metrics", "pprof", of.Pprof)
	}

	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(*sampleIv)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				eng.Eval(hist.Sample())
			}
		}
	}()
	if *duration > 0 {
		go func() { time.Sleep(*duration); close(stop) }()
	}

	if *demo {
		go func() {
			flow := tmproto.FlowKey{
				Proto: 17,
				Src:   netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("203.0.113.1"),
				SrcPort: 40000, DstPort: 443,
			}
			t := time.NewTicker(time.Second)
			defer t.Stop()
			i := 0
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					i++
					_ = edge.Send(flow, []byte(fmt.Sprintf("demo-%d", i)))
					var b strings.Builder
					for _, ds := range edge.Status() {
						state := "down"
						if ds.Alive {
							state = ds.RTT.Truncate(100 * time.Microsecond).String()
						}
						sel := " "
						if ds.Selected {
							sel = "*"
						}
						fmt.Fprintf(&b, " %s[PoP%d %s]", sel, ds.Dest.PoP, state)
					}
					logger.Info("status", "dests", b.String())
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
	case <-stop:
	}
	s := edge.Stats()
	logger.Info("done",
		"probes", s.ProbesSent, "replies", s.RepliesRcvd,
		"data_sent", s.DataSent, "data_rcvd", s.DataRcvd,
		"failovers", s.Failovers, "repins", s.RepinnedFlows)
	_ = ms.Shutdown()
	_ = edge.Close()
	of.DumpTrace(tracer, logger)
	// Final observability flush on stderr for log-harvesting supervisors.
	_ = obs.DumpSnapshot(os.Stderr, reg)
}
