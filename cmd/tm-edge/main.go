// Command tm-edge runs a Traffic Manager edge proxy: the cloud-edge
// network stack component that probes every available tunnel
// destination, steers new flows onto the best path, and fails over at
// RTT timescales when a prefix is withdrawn (§3.2).
//
// Destinations come either from repeated -dest flags or by resolving a
// service from a bootstrap TM-PoP:
//
//	tm-edge -resolve 127.0.0.1:4000 -service teleconf
//	tm-edge -dest 127.0.0.1:4000,1,anycast -dest 127.0.0.1:4001,1
//
// With -demo, the edge generates a probe flow and prints per-second
// status lines (selected destination, per-destination RTTs) — a live
// miniature of Fig. 10.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"painter/internal/obs"
	"painter/internal/tm"
	"painter/internal/tmproto"
)

type destList []tmproto.Destination

func (d *destList) String() string { return fmt.Sprintf("%d destinations", len(*d)) }

func (d *destList) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) < 2 {
		return fmt.Errorf("want addr:port,popid[,anycast], got %q", v)
	}
	ap, err := netip.ParseAddrPort(parts[0])
	if err != nil {
		return err
	}
	pop, err := strconv.ParseUint(parts[1], 10, 32)
	if err != nil {
		return err
	}
	dest := tmproto.Destination{Addr: ap.Addr(), Port: ap.Port(), PoP: uint32(pop)}
	if len(parts) > 2 && parts[2] == "anycast" {
		dest.Anycast = true
	}
	*d = append(*d, dest)
	return nil
}

func main() {
	var dests destList
	var (
		resolve  = flag.String("resolve", "", "bootstrap TM-PoP address to resolve destinations from")
		service  = flag.String("service", "default", "service name for resolution")
		probeIv  = flag.Duration("probe-interval", 50*time.Millisecond, "probe cadence per destination")
		demo     = flag.Bool("demo", false, "send a demo flow and print per-second status")
		duration = flag.Duration("duration", 0, "exit after this long (0 = run until signal)")
		metrics  = flag.String("metrics-listen", "", "HTTP address for /metrics and /debug/obs (empty = off)")
	)
	flag.Var(&dests, "dest", "tunnel destination (addr:port,popid[,anycast]); repeatable")
	flag.Parse()

	reg := obs.NewRegistry()
	cfg := tm.DefaultEdgeConfig()
	cfg.ProbeInterval = *probeIv
	cfg.Destinations = dests
	cfg.Obs = reg
	cfg.OnEvent = func(ev tm.Event) {
		switch ev.Kind {
		case tm.EventSelected:
			prev := "(none)"
			if ev.Prev != nil {
				prev = fmt.Sprintf("%s:%d", ev.Prev.Addr, ev.Prev.Port)
			}
			log.Printf("selected %s:%d (PoP %d, rtt %v) over %s",
				ev.Dest.Addr, ev.Dest.Port, ev.Dest.PoP, ev.RTT.Truncate(time.Microsecond), prev)
		case tm.EventDestDead:
			log.Printf("destination %s:%d (PoP %d) DEAD after %v silence",
				ev.Dest.Addr, ev.Dest.Port, ev.Dest.PoP, ev.SinceLastReply.Truncate(time.Millisecond))
		case tm.EventDestAlive:
			log.Printf("destination %s:%d (PoP %d) alive, rtt %v",
				ev.Dest.Addr, ev.Dest.Port, ev.Dest.PoP, ev.RTT.Truncate(time.Microsecond))
		}
	}
	if *demo {
		cfg.OnReturn = func(flow tmproto.FlowKey, payload []byte) {
			log.Printf("return traffic for %v: %d bytes", flow, len(payload))
		}
	}

	edge, err := tm.NewEdge(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer edge.Close()
	if *resolve != "" {
		if err := edge.ResolveFrom(*resolve, *service, 3*time.Second); err != nil {
			log.Fatalf("resolve: %v", err)
		}
		log.Printf("resolved %d destinations for service %q from %s",
			len(edge.Status()), *service, *resolve)
	}
	if len(edge.Status()) == 0 {
		log.Fatal("no destinations: use -dest or -resolve")
	}
	log.Printf("tm-edge up at %s with %d destinations", edge.Addr(), len(edge.Status()))

	var ms *obs.MetricsServer
	if *metrics != "" {
		ms, err = obs.StartServer(*metrics, reg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("tm-edge: metrics on http://%s/metrics", ms.Addr())
	}

	stop := make(chan struct{})
	if *duration > 0 {
		go func() { time.Sleep(*duration); close(stop) }()
	}

	if *demo {
		go func() {
			flow := tmproto.FlowKey{
				Proto: 17,
				Src:   netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("203.0.113.1"),
				SrcPort: 40000, DstPort: 443,
			}
			t := time.NewTicker(time.Second)
			defer t.Stop()
			i := 0
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					i++
					_ = edge.Send(flow, []byte(fmt.Sprintf("demo-%d", i)))
					var b strings.Builder
					for _, ds := range edge.Status() {
						state := "down"
						if ds.Alive {
							state = ds.RTT.Truncate(100 * time.Microsecond).String()
						}
						sel := " "
						if ds.Selected {
							sel = "*"
						}
						fmt.Fprintf(&b, " %s[PoP%d %s]", sel, ds.Dest.PoP, state)
					}
					log.Printf("status:%s", b.String())
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
	case <-stop:
	}
	s := edge.Stats()
	log.Printf("tm-edge: done — probes %d replies %d data %d/%d failovers %d repins %d",
		s.ProbesSent, s.RepliesRcvd, s.DataSent, s.DataRcvd, s.Failovers, s.RepinnedFlows)
	_ = ms.Shutdown()
	_ = edge.Close()
	// Final observability flush on stderr for log-harvesting supervisors.
	_ = obs.DumpSnapshot(os.Stderr, reg)
}
