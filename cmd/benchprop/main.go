// Command benchprop benchmarks the dense route-propagation engine
// (bgp.Propagate) against the retained map-based oracle
// (bgp.PropagateReference) on the ScaleSmall evaluation environment and
// writes the comparison to a JSON file (`make bench-json` →
// BENCH_PROPAGATE.json), tracking the perf trajectory across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"painter/internal/benchmeta"
	"painter/internal/bgp"
	"painter/internal/experiments"
)

// Result records one engine's benchmark numbers.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Report is the BENCH_PROPAGATE.json schema.
type Report struct {
	benchmeta.Meta
	Scale      string  `json:"scale"`
	Seed       int64   `json:"seed"`
	ASes       int     `json:"ases"`
	Peerings   int     `json:"peerings"`
	Dense      Result  `json:"dense"`
	Reference  Result  `json:"reference"`
	Speedup    float64 `json:"speedup"`
	AllocRatio float64 `json:"alloc_ratio"`
}

func main() {
	out := flag.String("out", "BENCH_PROPAGATE.json", "output file")
	seed := flag.Int64("seed", 7, "environment seed")
	flag.Parse()

	env, err := experiments.NewEnv(experiments.ScaleSmall, *seed)
	if err != nil {
		fatal(err)
	}
	inj, err := env.Deploy.Injections(env.Deploy.AllPeeringIDs())
	if err != nil {
		fatal(err)
	}
	env.Graph.Index() // pre-build the shared index, as in steady state

	run := func(f func() error) Result {
		// Warm tie-breaker caches so both engines measure propagation,
		// not first-touch geography hashing.
		if err := f(); err != nil {
			fatal(err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := f(); err != nil {
					b.Fatal(err)
				}
			}
		})
		return Result{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	tb := env.World.TieBreaker()
	dense := run(func() error {
		_, err := bgp.Propagate(env.Graph, inj, tb)
		return err
	})
	tbRef := env.World.TieBreaker()
	ref := run(func() error {
		_, err := bgp.PropagateReference(env.Graph, inj, tbRef)
		return err
	})

	rep := Report{
		Meta:       benchmeta.Collect(),
		Scale:      "small",
		Seed:       *seed,
		ASes:       env.Graph.Len(),
		Peerings:   len(env.Deploy.Peerings),
		Dense:      dense,
		Reference:  ref,
		Speedup:    ref.NsPerOp / dense.NsPerOp,
		AllocRatio: float64(ref.AllocsPerOp) / float64(dense.AllocsPerOp),
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("dense:     %10.0f ns/op  %6d allocs/op  %8d B/op\n",
		dense.NsPerOp, dense.AllocsPerOp, dense.BytesPerOp)
	fmt.Printf("reference: %10.0f ns/op  %6d allocs/op  %8d B/op\n",
		ref.NsPerOp, ref.AllocsPerOp, ref.BytesPerOp)
	fmt.Printf("speedup %.2fx, %.1fx fewer allocs → %s\n", rep.Speedup, rep.AllocRatio, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchprop:", err)
	os.Exit(1)
}
