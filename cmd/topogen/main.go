// Command topogen generates a synthetic Internet topology and prints a
// summary plus optional dumps, for inspecting the substrate the
// experiments run on.
//
//	topogen -tier1 12 -tier2 120 -stubs 2000 -seed 1
//	topogen -stubs 500 -dump-cones -dump-deployment
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"painter/internal/cloud"
	"painter/internal/topology"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "generator seed")
		tier1      = flag.Int("tier1", 12, "tier-1 backbone count")
		tier2      = flag.Int("tier2", 120, "tier-2 transit count")
		stubs      = flag.Int("stubs", 2000, "stub AS count")
		multihome  = flag.Float64("multihome", 2.4, "mean stub providers")
		dumpCones  = flag.Bool("dump-cones", false, "print the 10 largest customer cones")
		dumpDeploy = flag.Bool("dump-deployment", false, "build + summarize an Azure-profile deployment")
	)
	flag.Parse()

	cfg := topology.GenConfig{
		Seed: *seed, Tier1: *tier1, Tier2: *tier2, Stubs: *stubs,
		MeanStubProviders: *multihome, Tier2PeerProb: 0.35,
		EnterpriseFrac: 0.35, ContentFrac: 0.05,
	}
	g, err := topology.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("topology: %d ASes (%d tier-1, %d tier-2, %d stubs)\n", st.ASes, st.Tier1, st.Tier2, st.Stubs)
	fmt.Printf("links:    %d customer, %d peer (total %d)\n", st.CustomerLinks, st.PeerLinks, st.Links)
	fmt.Printf("cones:    largest %d ASes; mean stub multihoming %d\n", st.MaxConeSize, st.MeanStubProvs)

	if *dumpCones {
		type cone struct {
			asn  topology.ASN
			size int
		}
		var cones []cone
		for _, n := range g.ASNs() {
			if g.AS(n).Kind == topology.KindTransit {
				cones = append(cones, cone{n, g.ConeSize(n)})
			}
		}
		sort.Slice(cones, func(i, j int) bool {
			if cones[i].size != cones[j].size {
				return cones[i].size > cones[j].size
			}
			return cones[i].asn < cones[j].asn
		})
		fmt.Println("\nlargest customer cones:")
		for i, c := range cones {
			if i >= 10 {
				break
			}
			fmt.Printf("  %-8v tier-%d cone=%d\n", c.asn, g.AS(c.asn).Tier, c.size)
		}
	}

	if *dumpDeploy {
		d, err := cloud.Build(g, 64500, cloud.AzureProfile())
		if err != nil {
			log.Fatal(err)
		}
		ds := d.Stats()
		fmt.Printf("\ndeployment (azure profile): %d PoPs, %d peerings (%d transit), %.1f peers/PoP\n",
			ds.PoPs, ds.Peerings, ds.Transit, ds.PeersPerPoPMean)
		fmt.Println("PoPs:")
		for _, p := range d.PoPs {
			fmt.Printf("  %-4s peerings=%d\n", p.Metro, len(d.PeeringsAt(p.ID)))
		}
	}
}
