// Command topogen generates a synthetic Internet topology and prints a
// summary plus optional dumps, for inspecting the substrate the
// experiments run on.
//
//	topogen -tier1 12 -tier2 120 -stubs 2000 -seed 1
//	topogen -scale azure -dump-deployment    # exact experiments.NewEnv preset
//	topogen -stubs 500 -dump-cones -dump-deployment
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"painter/internal/cloud"
	"painter/internal/experiments"
	"painter/internal/topology"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "generator seed")
		scale      = flag.String("scale", "", "preset: small, peering, azure (the exact experiments.NewEnv configs; overrides -tier1/-tier2/-stubs/-multihome)")
		tier1      = flag.Int("tier1", 12, "tier-1 backbone count")
		tier2      = flag.Int("tier2", 120, "tier-2 transit count")
		stubs      = flag.Int("stubs", 2000, "stub AS count")
		multihome  = flag.Float64("multihome", 2.4, "mean stub providers")
		dumpCones  = flag.Bool("dump-cones", false, "print the 10 largest customer cones")
		dumpDeploy = flag.Bool("dump-deployment", false, "build + summarize the deployment (azure profile unless -scale picks another)")
	)
	flag.Parse()

	cfg := topology.GenConfig{
		Seed: *seed, Tier1: *tier1, Tier2: *tier2, Stubs: *stubs,
		MeanStubProviders: *multihome, Tier2PeerProb: 0.35,
		EnterpriseFrac: 0.35, ContentFrac: 0.05,
	}
	prof := cloud.AzureProfile()
	if *scale != "" {
		var sc experiments.Scale
		switch *scale {
		case "small":
			sc = experiments.ScaleSmall
		case "peering":
			sc = experiments.ScalePEERING
		case "azure":
			sc = experiments.ScaleAzure
		default:
			log.Fatalf("unknown scale %q (want small, peering, or azure)", *scale)
		}
		var err error
		cfg, prof, _, err = experiments.ScaleConfig(sc, *seed)
		if err != nil {
			log.Fatal(err)
		}
	}
	g, err := topology.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("topology: %d ASes (%d tier-1, %d tier-2, %d stubs)\n", st.ASes, st.Tier1, st.Tier2, st.Stubs)
	fmt.Printf("links:    %d customer, %d peer (total %d)\n", st.CustomerLinks, st.PeerLinks, st.Links)
	fmt.Printf("cones:    largest %d ASes; mean stub multihoming %d\n", st.MaxConeSize, st.MeanStubProvs)

	if *dumpCones {
		type cone struct {
			asn  topology.ASN
			size int
		}
		var cones []cone
		for _, n := range g.ASNs() {
			if g.AS(n).Kind == topology.KindTransit {
				cones = append(cones, cone{n, g.ConeSize(n)})
			}
		}
		sort.Slice(cones, func(i, j int) bool {
			if cones[i].size != cones[j].size {
				return cones[i].size > cones[j].size
			}
			return cones[i].asn < cones[j].asn
		})
		fmt.Println("\nlargest customer cones:")
		for i, c := range cones {
			if i >= 10 {
				break
			}
			fmt.Printf("  %-8v tier-%d cone=%d\n", c.asn, g.AS(c.asn).Tier, c.size)
		}
	}

	if *dumpDeploy {
		d, err := cloud.Build(g, 64500, prof)
		if err != nil {
			log.Fatal(err)
		}
		ds := d.Stats()
		fmt.Printf("\ndeployment (%s profile): %d PoPs, %d peerings (%d transit), %.1f peers/PoP\n",
			prof.Name, ds.PoPs, ds.Peerings, ds.Transit, ds.PeersPerPoPMean)
		fmt.Println("PoPs:")
		for _, p := range d.PoPs {
			fmt.Printf("  %-4s peerings=%d\n", p.Metro, len(d.PeeringsAt(p.ID)))
		}
	}
}
