// Command painterd runs the Advertisement Orchestrator as a service:
// it owns a deployment (simulated substrate), computes advertisement
// configurations on demand, evaluates them, and exposes the HTTP
// control API defined in internal/controlapi:
//
//	GET  /status            deployment + orchestrator summary
//	POST /solve             {"budget":25,"reuse_km":3000,"iterations":2}
//	GET  /config            current configuration (prefix → peerings)
//	GET  /evaluate          ground-truth benefit of the current config
//	GET  /reports           per-iteration learning reports
//	GET  /metrics           Prometheus text exposition
//	GET  /debug/obs         merged obs snapshot as JSON
//	GET  /debug/trace       flight recorder as Chrome trace-event JSON
//	GET  /debug/pprof/      runtime profiles (with -pprof)
//
// Computed configurations can also be announced over BGP to a route
// server (-route-server host:port) — the "advertisement installation"
// arrow of Fig. 4; pair with cmd/route-server.
//
// With -continuous the daemon additionally runs the event-driven
// re-solve controller (internal/core.Controller) against a private
// same-seed world churned by a generated fault schedule, logging each
// sync's outcome and exporting the core_repair_* metrics on /metrics:
//
//	painterd -scale small -continuous -tick 500ms -chaos-ticks 200
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"painter/internal/chaos"
	"painter/internal/controlapi"
	"painter/internal/core"
	"painter/internal/daemon"
	"painter/internal/experiments"
	"painter/internal/netsim"
	"painter/internal/obs"
	"painter/internal/obs/span"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8080", "HTTP control address")
		scale       = flag.String("scale", "peering", "environment scale: small, peering, azure")
		seed        = flag.Int64("seed", 7, "world seed")
		routeServer = flag.String("route-server", "", "optional BGP route server to announce configs to (host:port)")
		continuous  = flag.Bool("continuous", false, "run the continuous re-solve controller against a generated fault schedule")
		tick        = flag.Duration("tick", 2*time.Second, "tick interval of the -continuous fault schedule")
		chaosSeed   = flag.Int64("chaos-seed", 1, "fault-schedule seed for -continuous")
		chaosTicks  = flag.Int("chaos-ticks", 120, "fault-schedule length in ticks for -continuous")
		budget      = flag.Int("budget", 0, "prefix budget for -continuous (0 = 10% of peerings, min 5)")
	)
	of := daemon.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := of.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.ScaleSmall
	case "peering":
		sc = experiments.ScalePEERING
	case "azure":
		sc = experiments.ScaleAzure
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	logger.Info("building environment", "scale", *scale, "seed", *seed)
	env, err := experiments.NewEnv(sc, *seed)
	if err != nil {
		logger.Error("environment build failed", "err", err)
		os.Exit(1)
	}
	tracer := of.Tracer("painterd")
	srv := controlapi.New(env, *routeServer)
	srv.Trace = tracer
	srv.Pprof = of.Pprof

	st := env.Deploy.Stats()
	logger.Info("ready",
		"pops", st.PoPs, "peerings", st.Peerings, "transit", st.Transit,
		"ugs", env.UGs.Len(), "listen", *listen,
		"tracing", tracer != nil, "pprof", of.Pprof)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "err", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("http server failed", "err", err)
			os.Exit(1)
		}
	}()

	stopContinuous := func() {}
	if *continuous {
		stopContinuous, err = startContinuous(env, srv.Obs(), tracer, logger,
			*seed+1, *chaosSeed, *chaosTicks, *tick, *budget)
		if err != nil {
			logger.Error("continuous controller failed to start", "err", err)
			os.Exit(1)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	stopContinuous()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	_ = srv.Close()
	of.DumpTrace(tracer, logger)
	// Final observability flush on stderr for log-harvesting supervisors.
	_ = obs.DumpSnapshot(os.Stderr, srv.Obs(), env.World.Obs())
}

// startContinuous runs the event-driven re-solve controller on its own
// goroutine and returns a stop function that halts the tick loop and
// unsubscribes the controller. The controller gets a private same-seed
// world: the control API queries env.World concurrently, and netsim
// forbids ApplyEvent racing queries, so churn must stay off the shared
// world. Controller metrics (core_repairs_total, core_repair_seconds,
// ...) land in reg and are exposed on /metrics.
func startContinuous(env *experiments.Env, reg *obs.Registry, tracer *span.Tracer,
	logger *slog.Logger, worldSeed, chaosSeed int64, ticks int,
	interval time.Duration, budget int) (func(), error) {
	if budget <= 0 {
		budget = env.Budgets([]float64{0.1})[0]
		if budget < 5 {
			budget = 5
		}
	}
	w, err := netsim.New(env.Graph, env.Deploy, worldSeed)
	if err != nil {
		return nil, fmt.Errorf("continuous world: %w", err)
	}
	p := core.DefaultParams(budget)
	p.Obs = reg
	p.Trace = tracer
	ctrl, err := core.NewController(w, env.AllUGs, core.ControllerParams{Solver: p})
	if err != nil {
		return nil, fmt.Errorf("continuous controller: %w", err)
	}

	gc := chaos.DefaultGenConfig(chaosSeed)
	gc.Ticks = ticks
	sched, err := chaos.Generate(env.Graph, env.Deploy, gc)
	if err != nil {
		ctrl.Stop()
		return nil, fmt.Errorf("continuous schedule: %w", err)
	}
	byTick := make(map[int][]netsim.Event)
	maxTick := 0
	for _, se := range sched {
		byTick[se.Tick] = append(byTick[se.Tick], se.Ev)
		if se.Tick > maxTick {
			maxTick = se.Tick
		}
	}
	logger.Info("continuous controller started",
		"budget", budget, "prefixes", len(ctrl.Config().Prefixes),
		"schedule_events", len(sched), "ticks", maxTick+1, "tick", interval)

	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tk := time.NewTicker(interval)
		defer tk.Stop()
		for t := 0; t <= maxTick; t++ {
			select {
			case <-done:
				return
			case <-tk.C:
			}
			for _, ev := range byTick[t] {
				if err := w.ApplyEvent(ev); err != nil {
					logger.Error("continuous event failed", "tick", t, "event", ev.String(), "err", err)
					return
				}
			}
			cfg, rep, err := ctrl.Sync()
			if err != nil {
				logger.Error("continuous sync failed", "tick", t, "err", err)
				return
			}
			if rep.Events == 0 {
				continue
			}
			outcome := "noop"
			switch {
			case rep.FullSolve:
				outcome = "full-solve"
			case rep.Repaired:
				outcome = "repair"
			}
			logger.Info("continuous sync",
				"tick", t, "events", rep.Events, "outcome", outcome,
				"dirty", len(rep.Dirty), "dirty_frac", fmt.Sprintf("%.2f", rep.DirtyFraction),
				"anycast_changed", rep.AnycastChanged, "prefixes", len(cfg.Prefixes))
		}
		// The schedule ends with FinalRecovery, so the world is healthy:
		// report the converged config's ground-truth benefit.
		ev, err := core.Evaluate(w, env.AllUGs, ctrl.Config())
		if err != nil {
			logger.Error("continuous final evaluation failed", "err", err)
			return
		}
		logger.Info("continuous schedule complete",
			"benefit", fmt.Sprintf("%.3f", ev.Benefit),
			"prefixes", len(ctrl.Config().Prefixes))
	}()

	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			ctrl.Stop()
		})
	}, nil
}
