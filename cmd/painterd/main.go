// Command painterd runs the Advertisement Orchestrator as a service:
// it owns a deployment (simulated substrate), computes advertisement
// configurations on demand, evaluates them, and exposes the HTTP
// control API defined in internal/controlapi:
//
//	GET  /status            deployment + orchestrator summary
//	POST /solve             {"budget":25,"reuse_km":3000,"iterations":2}
//	GET  /config            current configuration (prefix → peerings)
//	GET  /evaluate          ground-truth benefit of the current config
//	GET  /reports           per-iteration learning reports
//
// Computed configurations can also be announced over BGP to a route
// server (-route-server host:port) — the "advertisement installation"
// arrow of Fig. 4; pair with cmd/route-server.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"painter/internal/controlapi"
	"painter/internal/experiments"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8080", "HTTP control address")
		scale       = flag.String("scale", "peering", "environment scale: small, peering, azure")
		seed        = flag.Int64("seed", 7, "world seed")
		routeServer = flag.String("route-server", "", "optional BGP route server to announce configs to (host:port)")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.ScaleSmall
	case "peering":
		sc = experiments.ScalePEERING
	case "azure":
		sc = experiments.ScaleAzure
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	log.Printf("painterd: building %s environment (seed %d)", *scale, *seed)
	env, err := experiments.NewEnv(sc, *seed)
	if err != nil {
		log.Fatal(err)
	}
	srv := controlapi.New(env, *routeServer)

	st := env.Deploy.Stats()
	log.Printf("painterd: ready — %d PoPs, %d peerings (%d transit), %d UGs; listening on %s",
		st.PoPs, st.Peerings, st.Transit, env.UGs.Len(), *listen)
	log.Fatal(http.ListenAndServe(*listen, srv.Handler()))
}
