// Command painterd runs the Advertisement Orchestrator as a service:
// it owns a deployment (simulated substrate), computes advertisement
// configurations on demand, evaluates them, and exposes the HTTP
// control API defined in internal/controlapi:
//
//	GET  /status            deployment + orchestrator summary
//	POST /solve             {"budget":25,"reuse_km":3000,"iterations":2}
//	GET  /config            current configuration (prefix → peerings)
//	GET  /evaluate          ground-truth benefit of the current config
//	GET  /reports           per-iteration learning reports
//	GET  /metrics           Prometheus text exposition
//	GET  /debug/obs         merged obs snapshot as JSON
//	GET  /debug/trace       flight recorder as Chrome trace-event JSON
//	GET  /debug/pprof/      runtime profiles (with -pprof)
//
// Computed configurations can also be announced over BGP to a route
// server (-route-server host:port) — the "advertisement installation"
// arrow of Fig. 4; pair with cmd/route-server.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"painter/internal/controlapi"
	"painter/internal/daemon"
	"painter/internal/experiments"
	"painter/internal/obs"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8080", "HTTP control address")
		scale       = flag.String("scale", "peering", "environment scale: small, peering, azure")
		seed        = flag.Int64("seed", 7, "world seed")
		routeServer = flag.String("route-server", "", "optional BGP route server to announce configs to (host:port)")
	)
	of := daemon.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := of.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.ScaleSmall
	case "peering":
		sc = experiments.ScalePEERING
	case "azure":
		sc = experiments.ScaleAzure
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	logger.Info("building environment", "scale", *scale, "seed", *seed)
	env, err := experiments.NewEnv(sc, *seed)
	if err != nil {
		logger.Error("environment build failed", "err", err)
		os.Exit(1)
	}
	tracer := of.Tracer("painterd")
	srv := controlapi.New(env, *routeServer)
	srv.Trace = tracer
	srv.Pprof = of.Pprof

	st := env.Deploy.Stats()
	logger.Info("ready",
		"pops", st.PoPs, "peerings", st.Peerings, "transit", st.Transit,
		"ugs", env.UGs.Len(), "listen", *listen,
		"tracing", tracer != nil, "pprof", of.Pprof)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "err", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("http server failed", "err", err)
			os.Exit(1)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	_ = srv.Close()
	of.DumpTrace(tracer, logger)
	// Final observability flush on stderr for log-harvesting supervisors.
	_ = obs.DumpSnapshot(os.Stderr, srv.Obs(), env.World.Obs())
}
