// Command painterd runs the Advertisement Orchestrator as a service:
// it owns a deployment (simulated substrate), computes advertisement
// configurations on demand, evaluates them, and exposes the HTTP
// control API defined in internal/controlapi:
//
//	GET  /status            deployment + orchestrator summary
//	POST /solve             {"budget":25,"reuse_km":3000,"iterations":2}
//	GET  /config            current configuration (prefix → peerings)
//	GET  /evaluate          ground-truth benefit of the current config
//	GET  /reports           per-iteration learning reports
//	GET  /tenants           multi-tenant control plane (PUT/GET/DELETE
//	                        /tenants/{id}, plus /status and /reports)
//	GET  /metrics           Prometheus text exposition, every tenant's
//	                        series labeled tenant="<id>"
//	GET  /debug/obs         merged obs snapshot as JSON
//	GET  /debug/trace       flight recorder as Chrome trace-event JSON
//	GET  /debug/pprof/      runtime profiles (with -pprof)
//
// Computed configurations can also be announced over BGP to a route
// server (-route-server host:port) — the "advertisement installation"
// arrow of Fig. 4; pair with cmd/route-server.
//
// The daemon always runs the multi-tenant control plane: a
// tenant.Manager reconciles declarative tenant specs (PUT
// /tenants/{id}) into private worlds each churned by its own fault
// schedule and tracked by its own continuous re-solve controller
// (internal/core.Controller). -continuous is sugar that submits one
// bootstrap tenant mirroring the daemon's own scale and seed before
// serving:
//
//	painterd -scale small -continuous -tick 500ms -chaos-ticks 200
//
// On SIGINT/SIGTERM the manager drains first — each tenant's in-flight
// sync completes, its final evaluation is flushed, and one summary
// line is logged per tenant — then the HTTP listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"painter/internal/controlapi"
	"painter/internal/daemon"
	"painter/internal/experiments"
	"painter/internal/obs"
	"painter/internal/obs/alert"
	"painter/internal/tenant"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8080", "HTTP control address")
		scale       = flag.String("scale", "peering", "environment scale: small, peering, azure")
		seed        = flag.Int64("seed", 7, "world seed")
		routeServer = flag.String("route-server", "", "optional BGP route server to announce configs to (host:port)")
		continuous  = flag.Bool("continuous", false, "submit a bootstrap tenant running the continuous re-solve controller")
		tick        = flag.Duration("tick", 2*time.Second, "tick interval of the bootstrap tenant")
		chaosSeed   = flag.Int64("chaos-seed", 1, "fault-schedule seed for the bootstrap tenant")
		chaosTicks  = flag.Int("chaos-ticks", 120, "fault-schedule length in ticks for the bootstrap tenant")
		budget      = flag.Int("budget", 0, "prefix budget for the bootstrap tenant (0 = 10% of peerings, min 5)")
	)
	of := daemon.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := of.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.ScaleSmall
	case "peering":
		sc = experiments.ScalePEERING
	case "azure":
		sc = experiments.ScaleAzure
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	logger.Info("building environment", "scale", *scale, "seed", *seed)
	env, err := experiments.NewEnv(sc, *seed)
	if err != nil {
		logger.Error("environment build failed", "err", err)
		os.Exit(1)
	}
	tracer := of.Tracer("painterd")
	mgr := tenant.NewManager(tenant.Params{Logger: logger, Trace: tracer})
	srv := controlapi.New(env, *routeServer)
	srv.Trace = tracer
	srv.Pprof = of.Pprof
	srv.Tenants = mgr

	if *continuous {
		tickMs := int(tick.Milliseconds())
		if tickMs < 1 {
			tickMs = 1
		}
		// The bootstrap tenant reuses the daemon's scale and seed, so its
		// world is the same topology and deployment as the control API's —
		// but private, since netsim forbids event churn racing queries.
		spec := tenant.Spec{
			Scale:  *scale,
			Seed:   *seed,
			Budget: *budget,
			TickMs: tickMs,
			Chaos:  tenant.ChaosSpec{Profile: "default", Seed: *chaosSeed, Ticks: *chaosTicks},
		}
		if _, err := mgr.Apply("bootstrap", spec, 0); err != nil {
			logger.Error("bootstrap tenant rejected", "err", err)
			os.Exit(1)
		}
		// Build it before serving so the first scrape already sees it.
		mgr.Reconcile()
	}

	st := env.Deploy.Stats()
	logger.Info("ready",
		"pops", st.PoPs, "peerings", st.Peerings, "transit", st.Transit,
		"ugs", env.UGs.Len(), "listen", *listen,
		"tracing", tracer != nil, "pprof", of.Pprof)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "err", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("http server failed", "err", err)
			os.Exit(1)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down", "tenants", mgr.Store().Len())
	// Snapshot the tenant registries AND alert states before teardown:
	// Close() force-resolves every alert, so what was firing at the
	// moment of the signal is only visible from this capture.
	finalRegs := append([]*obs.Registry{srv.Obs(), env.World.Obs()}, mgr.Registries()...)
	finalAlerts := mgr.Alerts()
	// Drain the reconcile loop and every tenant (in-flight syncs finish,
	// final evaluations flush, one summary line per tenant) before the
	// HTTP listener closes — scrapes during the drain still work.
	mgr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	_ = srv.Close()
	of.DumpTrace(tracer, logger)
	// Final observability flush on stderr for log-harvesting supervisors:
	// tenant counters plus whatever alerts were live when the signal hit.
	_ = obs.DumpSnapshot(os.Stderr, finalRegs...)
	for _, ta := range finalAlerts {
		for _, sv := range ta.States {
			if sv.State != alert.StateFiring && sv.State != alert.StatePending {
				continue
			}
			fmt.Fprintf(os.Stderr, "alert tenant=%s rule=%s series=%s state=%s since_tick=%d value=%g\n",
				ta.Tenant, sv.Rule, sv.Series, sv.State, sv.SinceTick, sv.Value)
		}
	}
}
