// Command route-server runs the PoP-side BGP route server: it accepts
// sessions (e.g. from painterd installing advertisement configurations),
// maintains a RIB, applies route-flap damping, and periodically logs its
// view — doubling as a RIS-like collector for observing churn.
//
//	route-server -listen 127.0.0.1:1790 &
//	painterd -route-server 127.0.0.1:1790
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"painter/internal/bgp"
	"painter/internal/daemon"
	"painter/internal/obs"
	"painter/internal/obs/history"
	"painter/internal/routeserver"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:1790", "BGP listen address")
		localAS  = flag.Uint("as", 64999, "local AS number")
		damping  = flag.Bool("damping", true, "enable RFC 2439 route-flap damping")
		logIv    = flag.Duration("log-interval", 10*time.Second, "RIB summary logging interval (0 = off)")
		metrics  = flag.String("metrics-listen", "", "HTTP address for /metrics, /debug/obs, /debug/obs/history, /debug/trace (empty = off)")
		sampleIv = flag.Duration("history-interval", time.Second, "time-series history sampling cadence")
	)
	of := daemon.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := of.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tracer := of.Tracer("route-server")

	reg := obs.NewRegistry()
	cfg := routeserver.Config{
		ListenAddr: *listen,
		LocalAS:    uint16(*localAS),
		BGPID:      0x0a00f311,
		HoldTime:   30 * time.Second,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
		Obs:    reg,
		Tracer: tracer,
	}
	if *damping {
		d := bgp.DefaultDampingConfig()
		cfg.Damping = &d
	}
	srv, err := routeserver.New(cfg)
	if err != nil {
		logger.Error("start failed", "err", err)
		os.Exit(1)
	}
	logger.Info("listening", "as", *localAS, "addr", srv.Addr(),
		"damping", *damping, "tracing", tracer != nil)

	// Time-series history: sample the registry on a fixed cadence so
	// /debug/obs/history serves windowed churn counters (update/withdraw
	// rates over the ring, not just totals).
	hist := history.New(history.Config{
		Regs: func() []*obs.Registry { return []*obs.Registry{reg} },
	})
	go func() {
		t := time.NewTicker(*sampleIv)
		defer t.Stop()
		for range t.C {
			hist.Sample()
		}
	}()

	var ms *obs.MetricsServer
	if *metrics != "" {
		ms, err = obs.StartServerWith(*metrics, obs.MuxConfig{
			Regs: []*obs.Registry{reg}, Trace: tracer, Pprof: of.Pprof,
			Extra: map[string]http.Handler{
				"/debug/obs/history": history.StoreHandler(hist),
			},
		})
		if err != nil {
			_ = srv.Close()
			logger.Error("metrics listen failed", "err", err)
			os.Exit(1)
		}
		logger.Info("metrics up", "url", "http://"+ms.Addr()+"/metrics", "pprof", of.Pprof)
	}

	if *logIv > 0 {
		go func() {
			t := time.NewTicker(*logIv)
			defer t.Stop()
			for range t.C {
				st := srv.Stats()
				logger.Info("rib summary",
					"prefixes", st.Prefixes, "sessions", st.Sessions,
					"updates", st.Updates, "withdraws", st.Withdraws,
					"suppressed", st.SuppressedAnnounces)
				for _, p := range srv.RIB().Prefixes() {
					if e, ok := srv.RIB().Best(p); ok {
						fmt.Printf("  %-18s via peer %d path %v\n", p, e.Peer, e.ASPath)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	_ = ms.Shutdown()
	_ = srv.Close()
	of.DumpTrace(tracer, logger)
	// Final observability flush: one merged JSON snapshot on stderr so a
	// supervisor harvesting logs keeps the last counters.
	_ = obs.DumpSnapshot(os.Stderr, reg)
}
