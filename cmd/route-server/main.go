// Command route-server runs the PoP-side BGP route server: it accepts
// sessions (e.g. from painterd installing advertisement configurations),
// maintains a RIB, applies route-flap damping, and periodically logs its
// view — doubling as a RIS-like collector for observing churn.
//
//	route-server -listen 127.0.0.1:1790 &
//	painterd -route-server 127.0.0.1:1790
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"painter/internal/bgp"
	"painter/internal/obs"
	"painter/internal/routeserver"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:1790", "BGP listen address")
		localAS = flag.Uint("as", 64999, "local AS number")
		damping = flag.Bool("damping", true, "enable RFC 2439 route-flap damping")
		logIv   = flag.Duration("log-interval", 10*time.Second, "RIB summary logging interval (0 = off)")
		metrics = flag.String("metrics-listen", "", "HTTP address for /metrics and /debug/obs (empty = off)")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	cfg := routeserver.Config{
		ListenAddr: *listen,
		LocalAS:    uint16(*localAS),
		BGPID:      0x0a00f311,
		HoldTime:   30 * time.Second,
		Logf:       routeserver.LogfStd,
		Obs:        reg,
	}
	if *damping {
		d := bgp.DefaultDampingConfig()
		cfg.Damping = &d
	}
	srv, err := routeserver.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("route-server: AS%d listening on %s (damping=%v)", *localAS, srv.Addr(), *damping)

	var ms *obs.MetricsServer
	if *metrics != "" {
		ms, err = obs.StartServer(*metrics, reg)
		if err != nil {
			_ = srv.Close()
			log.Fatal(err)
		}
		log.Printf("route-server: metrics on http://%s/metrics", ms.Addr())
	}

	if *logIv > 0 {
		go func() {
			t := time.NewTicker(*logIv)
			defer t.Stop()
			for range t.C {
				st := srv.Stats()
				log.Printf("rib: %d prefixes, %d sessions, %d updates, %d withdraws, %d suppressed",
					st.Prefixes, st.Sessions, st.Updates, st.Withdraws, st.SuppressedAnnounces)
				for _, p := range srv.RIB().Prefixes() {
					if e, ok := srv.RIB().Best(p); ok {
						fmt.Printf("  %-18s via peer %d path %v\n", p, e.Peer, e.ASPath)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("route-server: shutting down")
	_ = ms.Shutdown()
	_ = srv.Close()
	// Final observability flush: one merged JSON snapshot on stderr so a
	// supervisor harvesting logs keeps the last counters.
	_ = obs.DumpSnapshot(os.Stderr, reg)
}
