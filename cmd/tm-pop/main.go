// Command tm-pop runs a Traffic Manager PoP node: it terminates UDP
// tunnels from TM-Edges, answers keepalive probes, NATs client flows
// through the Known Flows table, serves the echo service, and answers
// destination-resolution queries with the destination set the
// Advertisement Orchestrator installed.
//
// Destinations are supplied as repeated -dest flags:
//
//	tm-pop -listen 127.0.0.1:4000 -pop-id 1 \
//	       -dest 127.0.0.1:4000,1,anycast -dest 127.0.0.1:4001,1,gre
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"painter/internal/daemon"
	"painter/internal/obs"
	"painter/internal/obs/history"
	"painter/internal/tm"
	"painter/internal/tmproto"
)

type destList []tmproto.Destination

func (d *destList) String() string { return fmt.Sprintf("%d destinations", len(*d)) }

func (d *destList) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) < 2 {
		return fmt.Errorf("want addr:port,popid[,anycast][,gre], got %q", v)
	}
	ap, err := netip.ParseAddrPort(parts[0])
	if err != nil {
		return fmt.Errorf("destination address %q: %w", parts[0], err)
	}
	pop, err := strconv.ParseUint(parts[1], 10, 32)
	if err != nil {
		return fmt.Errorf("pop id %q: %w", parts[1], err)
	}
	dest := tmproto.Destination{Addr: ap.Addr(), Port: ap.Port(), PoP: uint32(pop)}
	for _, opt := range parts[2:] {
		switch opt {
		case "anycast":
			dest.Anycast = true
		case "gre":
			dest.GRE = true
		default:
			return fmt.Errorf("unknown destination option %q (want anycast or gre)", opt)
		}
	}
	*d = append(*d, dest)
	return nil
}

func main() {
	var dests destList
	var (
		listen   = flag.String("listen", "127.0.0.1:4000", "UDP listen address")
		popID    = flag.Uint("pop-id", 1, "PoP identifier")
		flowTTL  = flag.Duration("flow-ttl", 5*time.Minute, "idle flow retention")
		statsIv  = flag.Duration("stats-interval", 10*time.Second, "stats logging interval (0 = off)")
		metrics  = flag.String("metrics-listen", "", "HTTP address for /metrics, /debug/obs, /debug/obs/history, /debug/trace (empty = off)")
		sampleIv = flag.Duration("history-interval", time.Second, "time-series history sampling cadence")
		sockets  = flag.Int("sockets", 0, "SO_REUSEPORT datapath sockets (0 = one per CPU, capped)")
		batch    = flag.Int("batch", 0, "datagrams per syscall (0 = 32; 1 = portable single-packet path)")
		workers  = flag.Int("workers", 0, "service worker-pool size (0 = max(2, NumCPU))")
	)
	flag.Var(&dests, "dest", "destination to advertise to edges (addr:port,popid[,anycast][,gre]); repeatable")
	of := daemon.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := of.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tracer := of.Tracer("tm-pop")

	reg := obs.NewRegistry()
	pop, err := tm.NewPoP(tm.PoPConfig{
		ListenAddr:   *listen,
		PoPID:        uint32(*popID),
		Destinations: dests,
		FlowTTL:      *flowTTL,
		Obs:          reg,
		Tracer:       tracer,
		Sockets:      *sockets,
		Batch:        *batch,
		Workers:      *workers,
	})
	if err != nil {
		logger.Error("start failed", "err", err)
		os.Exit(1)
	}
	logger.Info("listening", "pop", *popID, "addr", pop.Addr(),
		"destinations", len(dests), "tracing", tracer != nil)

	// Time-series history: sample the registry on a fixed cadence so
	// /debug/obs/history serves windowed counters, not just the latest.
	hist := history.New(history.Config{
		Regs: func() []*obs.Registry { return []*obs.Registry{reg} },
	})
	go func() {
		t := time.NewTicker(*sampleIv)
		defer t.Stop()
		for range t.C {
			hist.Sample()
		}
	}()

	var ms *obs.MetricsServer
	if *metrics != "" {
		ms, err = obs.StartServerWith(*metrics, obs.MuxConfig{
			Regs: []*obs.Registry{reg}, Trace: tracer, Pprof: of.Pprof,
			Extra: map[string]http.Handler{
				"/debug/obs/history": history.StoreHandler(hist),
			},
		})
		if err != nil {
			_ = pop.Close()
			logger.Error("metrics listen failed", "err", err)
			os.Exit(1)
		}
		logger.Info("metrics up", "url", "http://"+ms.Addr()+"/metrics", "pprof", of.Pprof)
	}

	if *statsIv > 0 {
		go func() {
			t := time.NewTicker(*statsIv)
			defer t.Stop()
			for range t.C {
				s := pop.Stats()
				logger.Info("stats",
					"data_in", s.DataIn, "data_out", s.DataOut,
					"probes", s.Probes, "resolves", s.Resolves,
					"flows", s.ActiveFlows, "malformed", s.Malformed)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	_ = ms.Shutdown()
	_ = pop.Close()
	of.DumpTrace(tracer, logger)
	// Final observability flush on stderr for log-harvesting supervisors.
	_ = obs.DumpSnapshot(os.Stderr, reg)
}
