// Command tm-pop runs a Traffic Manager PoP node: it terminates UDP
// tunnels from TM-Edges, answers keepalive probes, NATs client flows
// through the Known Flows table, serves the echo service, and answers
// destination-resolution queries with the destination set the
// Advertisement Orchestrator installed.
//
// Destinations are supplied as repeated -dest flags:
//
//	tm-pop -listen 127.0.0.1:4000 -pop-id 1 \
//	       -dest 127.0.0.1:4000,1,anycast -dest 127.0.0.1:4001,1
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"painter/internal/obs"
	"painter/internal/tm"
	"painter/internal/tmproto"
)

type destList []tmproto.Destination

func (d *destList) String() string { return fmt.Sprintf("%d destinations", len(*d)) }

func (d *destList) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) < 2 {
		return fmt.Errorf("want addr:port,popid[,anycast], got %q", v)
	}
	ap, err := netip.ParseAddrPort(parts[0])
	if err != nil {
		return fmt.Errorf("destination address %q: %w", parts[0], err)
	}
	pop, err := strconv.ParseUint(parts[1], 10, 32)
	if err != nil {
		return fmt.Errorf("pop id %q: %w", parts[1], err)
	}
	dest := tmproto.Destination{Addr: ap.Addr(), Port: ap.Port(), PoP: uint32(pop)}
	if len(parts) > 2 && parts[2] == "anycast" {
		dest.Anycast = true
	}
	*d = append(*d, dest)
	return nil
}

func main() {
	var dests destList
	var (
		listen  = flag.String("listen", "127.0.0.1:4000", "UDP listen address")
		popID   = flag.Uint("pop-id", 1, "PoP identifier")
		flowTTL = flag.Duration("flow-ttl", 5*time.Minute, "idle flow retention")
		statsIv = flag.Duration("stats-interval", 10*time.Second, "stats logging interval (0 = off)")
		metrics = flag.String("metrics-listen", "", "HTTP address for /metrics and /debug/obs (empty = off)")
	)
	flag.Var(&dests, "dest", "destination to advertise to edges (addr:port,popid[,anycast]); repeatable")
	flag.Parse()

	reg := obs.NewRegistry()
	pop, err := tm.NewPoP(tm.PoPConfig{
		ListenAddr:   *listen,
		PoPID:        uint32(*popID),
		Destinations: dests,
		FlowTTL:      *flowTTL,
		Obs:          reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("tm-pop %d listening on %s with %d advertised destinations", *popID, pop.Addr(), len(dests))

	var ms *obs.MetricsServer
	if *metrics != "" {
		ms, err = obs.StartServer(*metrics, reg)
		if err != nil {
			_ = pop.Close()
			log.Fatal(err)
		}
		log.Printf("tm-pop: metrics on http://%s/metrics", ms.Addr())
	}

	if *statsIv > 0 {
		go func() {
			t := time.NewTicker(*statsIv)
			defer t.Stop()
			for range t.C {
				s := pop.Stats()
				log.Printf("stats: data in/out %d/%d probes %d resolves %d flows %d malformed %d",
					s.DataIn, s.DataOut, s.Probes, s.Resolves, s.ActiveFlows, s.Malformed)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("tm-pop: shutting down")
	_ = ms.Shutdown()
	_ = pop.Close()
	// Final observability flush on stderr for log-harvesting supervisors.
	_ = obs.DumpSnapshot(os.Stderr, reg)
}
