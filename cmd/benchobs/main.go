// Command benchobs measures the observability overhead on the hot path:
// bgp.Propagate with live obs instrumentation vs the no-op default, and
// bgp.PropagateTraced with tracing off, head-sampled, and at full
// sampling. Built with -tags obsstrip the same binary measures the
// compile-time stripped variant (the instrumentation branch is
// constant-folded away).
//
// `make bench-obs` runs both builds and merges all modes into
// BENCH_OBS.json; the acceptance contract is live-vs-noop overhead
// within a few percent and sampled tracing within 3% of tracing off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"painter/internal/benchmeta"
	"painter/internal/bgp"
	"painter/internal/experiments"
	"painter/internal/obs"
	"painter/internal/obs/alert"
	"painter/internal/obs/history"
	"painter/internal/obs/span"
)

// Result records one mode's benchmark numbers.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Report is the BENCH_OBS.json schema. Modes maps "noop", "live",
// "stripped", "history_on", "trace_off", "trace_sampled", and
// "trace_full" to their numbers; the overhead fields compare pairs
// once both are present.
type Report struct {
	benchmeta.Meta
	Scale       string            `json:"scale"`
	Seed        int64             `json:"seed"`
	TraceSample int               `json:"trace_sample"`
	Modes       map[string]Result `json:"modes"`
	OverheadPct float64           `json:"live_vs_noop_overhead_pct"`
	// HistoryOnPct is the full observability pipeline — live counters,
	// a history sample of every series, and an alert-engine eval — vs
	// the no-op default (acceptance: ≤3%).
	HistoryOnPct float64 `json:"history_on_vs_noop_overhead_pct"`
	// TraceSampledPct is sampled tracing vs tracing off — the cost a
	// production deployment pays (acceptance: ≤3%). TraceFullPct is the
	// worst case with every propagate traced.
	TraceSampledPct float64 `json:"sampled_vs_off_trace_overhead_pct"`
	TraceFullPct    float64 `json:"full_vs_off_trace_overhead_pct"`
}

func main() {
	out := flag.String("out", "BENCH_OBS.json", "output file (merged with existing modes)")
	seed := flag.Int64("seed", 7, "environment seed")
	modes := flag.String("modes", "noop,live", "comma-separated modes to run (noop, live, stripped, history_on, trace_off, trace_sampled, trace_full)")
	sample := flag.Int("trace-sample", 64, "head-sampling rate for trace_sampled (1 in N)")
	histEvery := flag.Int("history-every", 64, "ops per history sample+alert eval in history_on (mirrors one controller tick's worth of propagations)")
	reps := flag.Int("reps", 5, "benchmark repetitions per mode (best-of)")
	flag.Parse()

	env, err := experiments.NewEnv(experiments.ScaleSmall, *seed)
	if err != nil {
		fatal(err)
	}
	inj, err := env.Deploy.Injections(env.Deploy.AllPeeringIDs())
	if err != nil {
		fatal(err)
	}
	env.Graph.Index()
	tb := env.World.TieBreaker()

	runOnce := func(op func() error) Result {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					b.Fatal(err)
				}
			}
		})
		return Result{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}
	plain := func() error {
		_, err := bgp.Propagate(env.Graph, inj, tb)
		return err
	}
	// traced wraps each propagate in a (possibly sampled-out) root span —
	// the same shape the solve loop produces per prefix.
	traced := func(tracer *span.Tracer) func() error {
		return func() error {
			root := tracer.StartRoot("bench.propagate")
			_, err := bgp.PropagateTraced(env.Graph, inj, tb, root)
			root.Finish()
			return err
		}
	}

	rep := Report{Scale: "small", Seed: *seed, Modes: map[string]Result{}}
	if buf, err := os.ReadFile(*out); err == nil {
		// Merge into a previous report so the two builds (default and
		// -tags obsstrip) accumulate into one file.
		_ = json.Unmarshal(buf, &rep)
		if rep.Modes == nil {
			rep.Modes = map[string]Result{}
		}
	}

	rep.Meta = benchmeta.Collect() // restamp on every (possibly merging) run
	rep.TraceSample = *sample
	type benchMode struct {
		name string
		reg  *obs.Registry
		op   func() error
	}
	var order []benchMode
	for _, mode := range strings.Split(*modes, ",") {
		mode = strings.TrimSpace(mode)
		bm := benchMode{name: mode, op: plain}
		switch mode {
		case "noop", "stripped":
		case "live":
			bm.reg = obs.NewRegistry()
		case "history_on":
			// Full pipeline: live counters on every op, plus a history
			// sample of every series and an alert-engine eval once per
			// -history-every ops — the production shape, where sampling
			// happens once per controller tick and a tick spans many
			// propagations.
			reg := obs.NewRegistry()
			bm.reg = reg
			hist := history.New(history.Config{
				Regs: func() []*obs.Registry { return []*obs.Registry{reg} },
			})
			eng := alert.NewEngine(hist, []alert.Rule{
				{Name: "bench_latency", Kind: alert.KindThreshold,
					Series: "bgp_propagate_seconds_p99*", Window: 8, For: 2,
					Op: alert.OpGT, Value: 1e12, Agg: alert.AggMax},
				{Name: "bench_drift", Kind: alert.KindEWMA,
					Series: "bgp_propagate_settled_p99*",
					Band:   1e12, Alpha: 0.2, MinSamples: 4},
			}, alert.Options{})
			ops, every := 0, *histEvery
			if every < 1 {
				every = 1
			}
			bm.op = func() error {
				if err := plain(); err != nil {
					return err
				}
				if ops++; ops%every == 0 {
					eng.Eval(hist.Sample())
				}
				return nil
			}
		case "trace_off":
			bm.op = traced(nil)
		case "trace_sampled":
			bm.op = traced(span.New(span.Config{Seed: 9, Sample: *sample}))
		case "trace_full":
			bm.op = traced(span.New(span.Config{Seed: 9, Sample: 1}))
		default:
			fatal(fmt.Errorf("unknown mode %q", mode))
		}
		order = append(order, bm)
	}
	// Repetitions are interleaved across modes — running each mode's reps
	// back to back lets thermal/scheduler drift masquerade as overhead of
	// whichever mode happens to run last. Best-of per mode estimates
	// intrinsic cost under that drift.
	best := map[string]Result{}
	for r := 0; r < *reps; r++ {
		for _, bm := range order {
			bgp.InstrumentPropagate(bm.reg)
			// Warm caches so the measurement is steady-state propagation.
			if err := bm.op(); err != nil {
				fatal(err)
			}
			res := runOnce(bm.op)
			if prev, ok := best[bm.name]; !ok || res.NsPerOp < prev.NsPerOp {
				best[bm.name] = res
			}
		}
	}
	for _, bm := range order {
		res := best[bm.name]
		rep.Modes[bm.name] = res
		fmt.Printf("%-13s %10.0f ns/op  %6d allocs/op  %8d B/op\n",
			bm.name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}

	overhead := func(base, probe string) (float64, bool) {
		b, okB := rep.Modes[base]
		p, okP := rep.Modes[probe]
		if !okB || !okP || b.NsPerOp <= 0 {
			return 0, false
		}
		return (p.NsPerOp - b.NsPerOp) / b.NsPerOp * 100, true
	}
	if pct, ok := overhead("noop", "live"); ok {
		rep.OverheadPct = pct
		fmt.Printf("live vs noop overhead: %+.2f%%\n", pct)
	}
	if pct, ok := overhead("noop", "history_on"); ok {
		rep.HistoryOnPct = pct
		fmt.Printf("history+alerts vs noop overhead: %+.2f%%\n", pct)
	}
	if pct, ok := overhead("trace_off", "trace_sampled"); ok {
		rep.TraceSampledPct = pct
		fmt.Printf("sampled (1/%d) tracing vs off: %+.2f%%\n", *sample, pct)
	}
	if pct, ok := overhead("trace_off", "trace_full"); ok {
		rep.TraceFullPct = pct
		fmt.Printf("full tracing vs off: %+.2f%%\n", pct)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("→ %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchobs:", err)
	os.Exit(1)
}
