// Command benchobs measures the observability overhead on the hot path:
// bgp.Propagate with live obs instrumentation vs the no-op default.
// Built with -tags obsstrip the same binary measures the compile-time
// stripped variant (the instrumentation branch is constant-folded away).
//
// `make bench-obs` runs both builds and merges the three modes into
// BENCH_OBS.json; the acceptance contract is live-vs-noop overhead
// within a few percent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"painter/internal/bgp"
	"painter/internal/experiments"
	"painter/internal/obs"
)

// Result records one mode's benchmark numbers.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Report is the BENCH_OBS.json schema. Modes maps "noop", "live", and
// "stripped" to their numbers; OverheadPct compares live to noop once
// both are present.
type Report struct {
	Scale       string            `json:"scale"`
	Seed        int64             `json:"seed"`
	Modes       map[string]Result `json:"modes"`
	OverheadPct float64           `json:"live_vs_noop_overhead_pct"`
}

func main() {
	out := flag.String("out", "BENCH_OBS.json", "output file (merged with existing modes)")
	seed := flag.Int64("seed", 7, "environment seed")
	modes := flag.String("modes", "noop,live", "comma-separated modes to run (noop, live, stripped)")
	flag.Parse()

	env, err := experiments.NewEnv(experiments.ScaleSmall, *seed)
	if err != nil {
		fatal(err)
	}
	inj, err := env.Deploy.Injections(env.Deploy.AllPeeringIDs())
	if err != nil {
		fatal(err)
	}
	env.Graph.Index()
	tb := env.World.TieBreaker()

	run := func() Result {
		// Warm caches so the measurement is steady-state propagation.
		if _, err := bgp.Propagate(env.Graph, inj, tb); err != nil {
			fatal(err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bgp.Propagate(env.Graph, inj, tb); err != nil {
					b.Fatal(err)
				}
			}
		})
		return Result{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	rep := Report{Scale: "small", Seed: *seed, Modes: map[string]Result{}}
	if buf, err := os.ReadFile(*out); err == nil {
		// Merge into a previous report so the two builds (default and
		// -tags obsstrip) accumulate into one file.
		_ = json.Unmarshal(buf, &rep)
		if rep.Modes == nil {
			rep.Modes = map[string]Result{}
		}
	}

	for _, mode := range strings.Split(*modes, ",") {
		mode = strings.TrimSpace(mode)
		switch mode {
		case "noop", "stripped":
			bgp.InstrumentPropagate(nil)
		case "live":
			bgp.InstrumentPropagate(obs.NewRegistry())
		default:
			fatal(fmt.Errorf("unknown mode %q", mode))
		}
		res := run()
		rep.Modes[mode] = res
		fmt.Printf("%-9s %10.0f ns/op  %6d allocs/op  %8d B/op\n",
			mode, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}

	if noop, ok := rep.Modes["noop"]; ok {
		if live, ok := rep.Modes["live"]; ok && noop.NsPerOp > 0 {
			rep.OverheadPct = (live.NsPerOp - noop.NsPerOp) / noop.NsPerOp * 100
			fmt.Printf("live vs noop overhead: %+.2f%%\n", rep.OverheadPct)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("→ %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchobs:", err)
	os.Exit(1)
}
