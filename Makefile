# PAINTER reproduction — stdlib-only Go.

GO ?= go

# Packages with a per-package coverage floor (enforced by `make cover`).
COVER_PKGS = painter/internal/netsim painter/internal/tm painter/internal/chaos
COVER_FLOOR = 70
# The BGP engine carries a higher floor: the delta engine's differential
# and metamorphic suites are its correctness argument.
COVER_PKGS_BGP = painter/internal/bgp
COVER_FLOOR_BGP = 85
# The tenant control plane carries its own floor: spec validation, the
# store's optimistic concurrency, and the reconcile state machine are
# all small, fully-exercisable surfaces.
COVER_PKGS_TENANT = painter/internal/tenant
COVER_FLOOR_TENANT = 80

# Native fuzz targets smoke-tested by `make fuzz` (one -fuzz per run).
FUZZ_TIME ?= 10s

.PHONY: all build build-obsstrip vet test race fuzz cover lint bench bench-smoke bench-json bench-obs experiments examples clean

all: build build-obsstrip vet test

build:
	$(GO) build ./...

# The obsstrip build compiles all tracing out; building and vetting it
# keeps both halves of the build-tag pair honest.
build-obsstrip:
	$(GO) build -tags obsstrip ./...
	$(GO) vet -tags obsstrip ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet always; staticcheck when installed (CI
# installs it, the dev container may not have it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go vet ran)"; \
	fi

# -shuffle=on randomizes test order every run, flushing out hidden
# inter-test state; failures print the shuffle seed for replay.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./internal/tm/ ./internal/tm/netio/ ./internal/tmproto/ ./internal/bgp/ ./internal/routeserver/ ./internal/netsim/emul/ ./internal/core/ ./internal/netsim/ ./internal/chaos/ ./internal/chaos/tmchaos/ ./internal/obs/ ./internal/obs/span/ ./internal/obs/history/ ./internal/obs/alert/ ./internal/controlapi/ ./internal/usergroup/ ./internal/tenant/

# Short fuzzing smoke on the wire decoders: each target runs for
# FUZZ_TIME (go test allows one -fuzz pattern per invocation).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzWireDecode -fuzztime=$(FUZZ_TIME) ./internal/tmproto/
	$(GO) test -run='^$$' -fuzz=FuzzGREDecode -fuzztime=$(FUZZ_TIME) ./internal/tmproto/
	$(GO) test -run='^$$' -fuzz=FuzzParseUpdate -fuzztime=$(FUZZ_TIME) ./internal/bgp/
	$(GO) test -run='^$$' -fuzz=FuzzParseOpen -fuzztime=$(FUZZ_TIME) ./internal/bgp/
	$(GO) test -run='^$$' -fuzz=FuzzParseNotification -fuzztime=$(FUZZ_TIME) ./internal/bgp/
	$(GO) test -run='^$$' -fuzz=FuzzParseHeader -fuzztime=$(FUZZ_TIME) ./internal/bgp/
	$(GO) test -run='^$$' -fuzz=FuzzPropagateDelta -fuzztime=$(FUZZ_TIME) ./internal/bgp/
	$(GO) test -run='^$$' -fuzz=FuzzParseRules -fuzztime=$(FUZZ_TIME) ./internal/obs/alert/

# Coverage with a per-package floor for the failure-handling core and a
# higher floor for the BGP engine.
cover:
	@mkdir -p results
	$(GO) test -coverprofile=results/coverage.out -covermode=atomic $(COVER_PKGS) $(COVER_PKGS_BGP) $(COVER_PKGS_TENANT)
	@$(GO) test -cover $(COVER_PKGS) 2>/dev/null | awk -v floor=$(COVER_FLOOR) ' \
		/coverage:/ { \
			pct = $$0; sub(/.*coverage: /, "", pct); sub(/%.*/, "", pct); \
			if (pct + 0 < floor) { printf "FAIL: %s below %s%% coverage floor\n", $$2, floor; bad = 1 } \
			else { printf "ok: %s %s%%\n", $$2, pct } \
		} \
		END { exit bad }'
	@$(GO) test -cover $(COVER_PKGS_BGP) 2>/dev/null | awk -v floor=$(COVER_FLOOR_BGP) ' \
		/coverage:/ { \
			pct = $$0; sub(/.*coverage: /, "", pct); sub(/%.*/, "", pct); \
			if (pct + 0 < floor) { printf "FAIL: %s below %s%% coverage floor\n", $$2, floor; bad = 1 } \
			else { printf "ok: %s %s%%\n", $$2, pct } \
		} \
		END { exit bad }'
	@$(GO) test -cover $(COVER_PKGS_TENANT) 2>/dev/null | awk -v floor=$(COVER_FLOOR_TENANT) ' \
		/coverage:/ { \
			pct = $$0; sub(/.*coverage: /, "", pct); sub(/%.*/, "", pct); \
			if (pct + 0 < floor) { printf "FAIL: %s below %s%% coverage floor\n", $$2, floor; bad = 1 } \
			else { printf "ok: %s %s%%\n", $$2, pct } \
		} \
		END { exit bad }'

bench:
	$(GO) test -bench=. -benchmem ./...

# Compile-and-run every benchmark once (-benchtime=1x): catches bit-rot
# in benchmark code without paying for real measurement. CI runs this.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Benchmark the dense propagation engine against the reference oracle at
# ScaleSmall and record the numbers (ns/op, allocs/op, speedup), then the
# continuous controller's repair-vs-full-solve speedup under churn, then
# delta-vs-full propagation by changed-catchment size, then the solve
# wall-clock/memory sweep across small/peering/azure scales.
bench-json:
	$(GO) run ./cmd/benchprop -out BENCH_PROPAGATE.json
	$(GO) run ./cmd/painter-bench -exp resolve -scale small -resolve-out BENCH_RESOLVE.json
	$(GO) run ./cmd/painter-bench -exp delta -scale peering -delta-out BENCH_DELTA.json
	$(GO) run ./cmd/painter-bench -exp scale -scale-out BENCH_SCALE.json
	$(GO) run ./cmd/painter-bench -exp tenants -tenants-out BENCH_TENANTS.json
	$(GO) run ./cmd/painter-bench -exp detect -detect-out BENCH_DETECT.json
	$(GO) run ./cmd/painter-bench -exp datapath -datapath-out BENCH_DATAPATH.json

# Measure observability overhead on the propagation hot path: live obs
# vs the no-op default, plus the -tags obsstrip compile-time-stripped
# build. Both invocations merge into one BENCH_OBS.json.
bench-obs:
	rm -f BENCH_OBS.json
	$(GO) run ./cmd/benchobs -modes noop,live,history_on,trace_off,trace_sampled,trace_full -out BENCH_OBS.json
	$(GO) run -tags obsstrip ./cmd/benchobs -modes stripped -out BENCH_OBS.json

# Regenerate every table/figure at prototype (PEERING) scale.
experiments:
	$(GO) run ./cmd/painter-bench -exp all -scale peering -iters 3

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fig1-scenario
	$(GO) run ./examples/failover
	$(GO) run ./examples/enterprise

clean:
	$(GO) clean ./...
	rm -f coverage.out results/coverage.out
