# PAINTER reproduction — stdlib-only Go.

GO ?= go

.PHONY: all build vet test race bench bench-json experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/tm/ ./internal/bgp/ ./internal/routeserver/ ./internal/netsim/emul/ ./internal/core/ ./internal/netsim/

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark the dense propagation engine against the reference oracle at
# ScaleSmall and record the numbers (ns/op, allocs/op, speedup).
bench-json:
	$(GO) run ./cmd/benchprop -out BENCH_PROPAGATE.json

# Regenerate every table/figure at prototype (PEERING) scale.
experiments:
	$(GO) run ./cmd/painter-bench -exp all -scale peering -iters 3

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fig1-scenario
	$(GO) run ./examples/failover
	$(GO) run ./examples/enterprise

clean:
	$(GO) clean ./...
