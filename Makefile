# PAINTER reproduction — stdlib-only Go.

GO ?= go

.PHONY: all build vet test race bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/tm/ ./internal/bgp/ ./internal/routeserver/ ./internal/netsim/emul/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure at prototype (PEERING) scale.
experiments:
	$(GO) run ./cmd/painter-bench -exp all -scale peering -iters 3

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fig1-scenario
	$(GO) run ./examples/failover
	$(GO) run ./examples/enterprise

clean:
	$(GO) clean ./...
