// Enterprise: a Fig. 2-style modern enterprise with three sites — an
// international HQ, a regional branch office, and remote employees —
// each running a TM-Edge (the cloud-edge network stack). Two TM-PoPs
// serve them over links with site-specific latencies. Each site
// resolves its destination set from the cloud, steers its flows onto
// its own best path, and reports what it chose.
//
//	go run ./examples/enterprise
package main

import (
	"fmt"
	"log"
	"net/netip"
	"sync"
	"time"

	"painter/internal/netsim/emul"
	"painter/internal/tm"
	"painter/internal/tmproto"
)

type site struct {
	name string
	// One-way latencies from this site to PoP-A and PoP-B.
	toA, toB time.Duration
}

func main() {
	sites := []site{
		{"international-hq", 8 * time.Millisecond, 45 * time.Millisecond},
		{"regional-branch", 30 * time.Millisecond, 12 * time.Millisecond},
		{"remote-employees", 25 * time.Millisecond, 22 * time.Millisecond},
	}

	popA, err := tm.NewPoP(tm.PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer popA.Close()
	popB, err := tm.NewPoP(tm.PoPConfig{ListenAddr: "127.0.0.1:0", PoPID: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer popB.Close()
	fmt.Printf("cloud: PoP-A at %s, PoP-B at %s (echo service)\n\n", popA.Addr(), popB.Addr())

	var wg sync.WaitGroup
	results := make(chan string, len(sites))
	for i, s := range sites {
		wg.Add(1)
		go func(i int, s site) {
			defer wg.Done()
			out, err := runSite(i, s, popA, popB)
			if err != nil {
				results <- fmt.Sprintf("%s: ERROR %v", s.name, err)
				return
			}
			results <- out
		}(i, s)
	}
	wg.Wait()
	close(results)
	for r := range results {
		fmt.Println(r)
	}
}

func runSite(i int, s site, popA, popB *tm.PoP) (string, error) {
	linkA, err := emul.NewLink(popA.Addr(), s.toA, int64(100+i))
	if err != nil {
		return "", err
	}
	defer linkA.Close()
	linkB, err := emul.NewLink(popB.Addr(), s.toB, int64(200+i))
	if err != nil {
		return "", err
	}
	defer linkB.Close()

	mkDest := func(l *emul.Link, pop uint32) tmproto.Destination {
		ap := netip.MustParseAddrPort(l.Addr())
		return tmproto.Destination{Addr: ap.Addr(), Port: ap.Port(), PoP: pop}
	}
	cfg := tm.DefaultEdgeConfig()
	cfg.ProbeInterval = 20 * time.Millisecond
	cfg.Destinations = []tmproto.Destination{mkDest(linkA, 1), mkDest(linkB, 2)}

	echoes := make(chan struct{}, 64)
	cfg.OnReturn = func(tmproto.FlowKey, []byte) { echoes <- struct{}{} }

	edge, err := tm.NewEdge(cfg)
	if err != nil {
		return "", err
	}
	defer edge.Close()

	// Wait for path selection to settle, then run some traffic.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := edge.Selected(); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)

	flow := tmproto.FlowKey{
		Proto:   6,
		Src:     netip.AddrFrom4([4]byte{10, byte(i), 0, 1}),
		Dst:     netip.MustParseAddr("203.0.113.10"),
		SrcPort: uint16(40000 + i), DstPort: 443,
	}
	const sends = 20
	for j := 0; j < sends; j++ {
		if err := edge.Send(flow, []byte(fmt.Sprintf("%s payload %d", s.name, j))); err != nil {
			return "", err
		}
	}
	got := 0
	timeout := time.After(3 * time.Second)
	for got < sends {
		select {
		case <-echoes:
			got++
		case <-timeout:
			return "", fmt.Errorf("only %d of %d echoes", got, sends)
		}
	}

	sel, _ := edge.Selected()
	var lines string
	for _, ds := range edge.Status() {
		mark := " "
		if ds.Selected {
			mark = "*"
		}
		lines += fmt.Sprintf("\n    %s PoP-%d rtt=%v", mark, ds.Dest.PoP, ds.RTT.Truncate(100*time.Microsecond))
	}
	return fmt.Sprintf("%-18s → pinned to PoP-%d, %d/%d echoes%s",
		s.name, sel.PoP, got, sends, lines), nil
}
