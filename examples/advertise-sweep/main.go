// Advertise-sweep: compare all five advertisement strategies across
// prefix budgets on one deployment — the data behind Fig. 6a.
//
//	go run ./examples/advertise-sweep
package main

import (
	"fmt"
	"log"

	"painter/internal/experiments"
)

func main() {
	fmt.Println("building PEERING-scale environment (25 PoPs)...")
	env, err := experiments.NewEnv(experiments.ScalePEERING, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d PoPs, %d peerings, %d user groups\n\n",
		len(env.Deploy.PoPs), len(env.Deploy.AllPeeringIDs()), env.UGs.Len())

	rows, err := experiments.RunFig6a(env, []float64{0.01, 0.03, 0.1, 0.3, 1.0}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.Fig6aTable(rows))
	fmt.Println(experiments.Fig14Table(rows))

	// Headline: at matched benefit, how many fewer prefixes does PAINTER
	// use than One-per-Peering?
	target := 0.75
	painterAt, onePeerAt := -1, -1
	for _, r := range rows {
		if painterAt < 0 && r.Painter.Estimated >= target {
			painterAt = r.Budget
		}
		if onePeerAt < 0 && r.OnePerPeer.Estimated >= target {
			onePeerAt = r.Budget
		}
	}
	switch {
	case painterAt < 0:
		fmt.Printf("PAINTER did not reach %.0f%% of possible benefit in this sweep\n", target*100)
	case onePeerAt < 0:
		fmt.Printf("PAINTER reached %.0f%% benefit with %d prefixes; One-per-Peering never did\n",
			target*100, painterAt)
	default:
		fmt.Printf("at %.0f%% of possible benefit: PAINTER %d prefixes vs One-per-Peering %d (%.1fx savings)\n",
			target*100, painterAt, onePeerAt, float64(onePeerAt)/float64(painterAt))
	}
}
