// Fig1-scenario: the paper's motivating customer problem, reconstructed
// in the simulator (Fig. 1).
//
// An enterprise branch office in City A reaches the cloud through a
// regional ISP whose peering router fails. Under anycast, its traffic
// then lands at a distant PoP in City B — a policy-compliant path to the
// close PoP through a transit ISP exists, but plain anycast/BGP has "no
// mechanism for detecting such paths and re-directing customer traffic".
// PAINTER's Advertisement Orchestrator exposes that transit path as a
// separate prefix, and the Traffic Manager can steer onto it at once.
//
//	go run ./examples/fig1-scenario
package main

import (
	"fmt"
	"log"

	"painter/internal/bgp"
	"painter/internal/cloud"
	"painter/internal/netsim"
	"painter/internal/topology"
)

func main() {
	// --- The cast (Fig. 1): City A = New York, City B = Los Angeles.
	const (
		transitISP  = topology.ASN(1)  // Transit ISP (tier-1)
		regionalISP = topology.ASN(10) // City A's regional ISP (tier-2)
		otherISP    = topology.ASN(11) // serves City B
		enterprise  = topology.ASN(100)
	)
	g := topology.NewGraph()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(g.AddAS(&topology.AS{ASN: transitISP, Tier: topology.TierOne, Kind: topology.KindTransit,
		Metros: []string{"nyc", "lax"}}))
	must(g.AddAS(&topology.AS{ASN: regionalISP, Tier: topology.TierTwo, Kind: topology.KindTransit,
		Metros: []string{"nyc"}}))
	must(g.AddAS(&topology.AS{ASN: otherISP, Tier: topology.TierTwo, Kind: topology.KindTransit,
		Metros: []string{"lax"}}))
	must(g.AddAS(&topology.AS{ASN: enterprise, Tier: topology.TierStub, Kind: topology.KindEnterprise,
		Metros: []string{"nyc"}}))
	// The branch multihomes to the regional ISP; both ISPs buy transit.
	must(g.Link(regionalISP, enterprise, topology.RelCustomer))
	must(g.Link(transitISP, regionalISP, topology.RelCustomer))
	must(g.Link(transitISP, otherISP, topology.RelCustomer))
	must(g.Validate())

	// --- The cloud: a close PoP in City A, a distant PoP in City B.
	newDeploy := func(includeRegional bool) *cloud.Deployment {
		peerings := []cloud.Peering{
			// Transit ISP provides transit at both PoPs (customer-class).
			{ID: 0, PoP: 0, PeerASN: transitISP, ClassAtPeer: bgp.ClassCustomer},
			{ID: 1, PoP: 1, PeerASN: transitISP, ClassAtPeer: bgp.ClassCustomer},
			// City B's ISP peers at the distant PoP.
			{ID: 2, PoP: 1, PeerASN: otherISP, ClassAtPeer: bgp.ClassPeer},
		}
		if includeRegional {
			// The regional ISP peers at the close PoP — until its peering
			// router fails.
			peerings = append(peerings, cloud.Peering{
				ID: 3, PoP: 0, PeerASN: regionalISP, ClassAtPeer: bgp.ClassPeer,
			})
		}
		nyc := cloud.PoP{ID: 0, Metro: "nyc"}
		lax := cloud.PoP{ID: 1, Metro: "lax"}
		d, err := cloud.New(64500, []cloud.PoP{nyc, lax}, peerings)
		if err != nil {
			log.Fatal(err)
		}
		return d
	}

	// A clean latency model for the demo: pure geography, no random
	// intra-AS detours (the routing failure is the story here).
	simCfg := netsim.DefaultConfig()
	simCfg.DetourProb = 0
	simCfg.TransitDetourProb = 0
	simCfg.AccessMinMs, simCfg.AccessMaxMs = 2, 4

	show := func(label string, d *cloud.Deployment, peerings []bgp.IngressID) {
		w, err := netsim.NewWithConfig(g, d, 7, simCfg)
		if err != nil {
			log.Fatal(err)
		}
		sel, err := w.ResolveIngress(peerings)
		if err != nil {
			log.Fatal(err)
		}
		r, ok := sel[enterprise]
		if !ok {
			fmt.Printf("%-34s branch office: NO ROUTE\n", label)
			return
		}
		pop, _ := d.PoPOfPeering(r.Ingress)
		ms, _ := w.BaseLatencyMs(enterprise, "nyc", r.Ingress)
		fmt.Printf("%-34s branch lands at PoP %s via %v (%.1f ms)\n",
			label, pop.Metro, d.Peering(r.Ingress).PeerASN, ms)
	}

	fmt.Println("Fig. 1 — a difficult customer problem, and what PAINTER does about it")
	fmt.Println()

	healthy := newDeploy(true)
	show("healthy anycast:", healthy, healthy.AllPeeringIDs())

	// The regional ISP's peering router fails: its peering disappears.
	broken := newDeploy(false)
	show("after peering failure, anycast:", broken, broken.AllPeeringIDs())

	// PAINTER: a dedicated prefix via the Transit ISP at the CLOSE PoP
	// exposes the policy-compliant path Fig. 1 labels "Unusable".
	show("PAINTER prefix (transit @ nyc):", broken, []bgp.IngressID{0})

	fmt.Println()
	fmt.Println("Under plain anycast the enterprise is stuck at the distant PoP until")
	fmt.Println("operators 'fiddle with route policies and weights' (risky and slow).")
	fmt.Println("With PAINTER the transit path at the close PoP is already advertised as")
	fmt.Println("its own prefix, and the TM-Edge shifts flows to it within one RTT —")
	fmt.Println("run ./examples/failover to watch that mechanism live.")
}
