// Failover: the Fig. 10 scenario end-to-end with real UDP sockets.
//
// Two TM-PoPs run behind latency-emulating links. A TM-Edge holds
// tunnels to the anycast prefix and four unicast prefixes. Mid-run,
// PoP-A's prefixes are withdrawn; the edge detects the loss within
// ~1 RTT and switches to PoP-B, while a BGP collector session records
// the churn anycast reconvergence would produce.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"painter/internal/experiments"
)

func main() {
	cfg := experiments.DefaultFig10Config()
	fmt.Printf("running failover scenario: fail at t=%v, anycast outage %v, reconvergence %v\n\n",
		cfg.PreFail, cfg.AnycastOutage, cfg.ConvergeAfter)

	res, err := experiments.RunFig10(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s  %-22s  %-8s  %s\n", "t", "selected prefix", "bgp-upd", "per-prefix RTT (ms)")
	for _, s := range res.Samples {
		var rtts []string
		for name, ms := range s.RTTMs {
			short := name
			if i := strings.IndexByte(short, ' '); i > 0 {
				short = short[:i]
			}
			if ms < 0 {
				rtts = append(rtts, short+"=DOWN")
			} else {
				rtts = append(rtts, fmt.Sprintf("%s=%.1f", short, ms))
			}
		}
		sel := s.Selected
		if i := strings.IndexByte(sel, ' '); i > 0 {
			sel = sel[:i]
		}
		fmt.Printf("%-8s  %-22s  %-8d  %s\n",
			s.T.Truncate(10*time.Millisecond), sel, s.BGPUpdates, strings.Join(rtts, " "))
	}

	fmt.Printf("\nfailure injected at  %v\n", res.FailAt)
	fmt.Printf("edge declared dead   +%v after failure (%.2f RTT of the dead path)\n",
		res.DetectedAfter.Truncate(time.Millisecond), res.DetectionRTTs)
	fmt.Printf("switched to PoP-B    +%v after failure\n", res.SwitchedAfter.Truncate(time.Millisecond))
	fmt.Printf("BGP updates observed %d (anycast reconvergence churn)\n", res.TotalBGPUpdates)
	fmt.Println("\ncompare: BGP convergence runs minutes; DNS TTLs are 1-10 minutes (§5.2.3).")
}
