// Quickstart: build a small simulated Internet + cloud deployment, run
// the Advertisement Orchestrator with a budget of 6 prefixes, and print
// what it chose and what users gained.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"painter/internal/advertise"
	"painter/internal/cloud"
	"painter/internal/core"
	"painter/internal/netsim"
	"painter/internal/topology"
	"painter/internal/usergroup"
)

func main() {
	// 1. A synthetic Internet: tiered AS graph with geography.
	graph, err := topology.Generate(topology.GenConfig{
		Seed: 42, Tier1: 5, Tier2: 30, Stubs: 400,
		MeanStubProviders: 2.4, Tier2PeerProb: 0.35,
		EnterpriseFrac: 0.4, ContentFrac: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The cloud's footprint: PoPs in the busiest metros, peerings with
	//    the transit networks present there.
	deploy, err := cloud.Build(graph, 64500, cloud.Profile{
		Name: "quickstart", PoPMetros: 12, PeerFrac: 0.7, TransitProviders: 2, Seed: 43,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := deploy.Stats()
	fmt.Printf("deployment: %d PoPs, %d peerings (%d transit)\n", st.PoPs, st.Peerings, st.Transit)

	// 3. The world: routing policy + hidden preferences + latency.
	world, err := netsim.New(graph, deploy, 44)
	if err != nil {
		log.Fatal(err)
	}

	// 4. User groups with Zipf traffic weights.
	ugs, err := usergroup.Build(graph, usergroup.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	inputs, covered, err := core.SimInputs(world, ugs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user groups: %d (anycast-reachable)\n", covered.Len())

	// 5. Run the Advertisement Orchestrator: 6 prefixes, D_reuse 3000km,
	//    3 advertise→measure→learn iterations.
	params := core.DefaultParams(6)
	params.MaxIterations = 3
	exec := core.NewWorldExecutor(world, covered, 0.5, 45)
	orch, err := core.New(inputs, exec, params)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := orch.Solve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nchosen configuration: %d prefixes, %d (peering,prefix) advertisements\n",
		cfg.NumPrefixes(), cfg.TotalAdvertisements())
	for i, peerings := range cfg.Prefixes {
		fmt.Printf("  prefix %d via %d peerings:", i, len(peerings))
		for j, id := range peerings {
			if j == 6 {
				fmt.Printf(" …")
				break
			}
			pop, _ := deploy.PoPOfPeering(id)
			fmt.Printf(" %s/%v", pop.Metro, deploy.Peering(id).PeerASN)
		}
		fmt.Println()
	}

	for _, rep := range orch.Reports() {
		fmt.Printf("iteration %d: realized %.2f ms weighted benefit, %d new preference facts\n",
			rep.Iteration, rep.RealizedBenefit, rep.FactsLearned)
	}

	// 6. Ground truth: how does it compare to the default and baselines?
	painter, err := core.Evaluate(world, covered, cfg)
	if err != nil {
		log.Fatal(err)
	}
	perPoP, err := core.Evaluate(world, covered, advertise.OnePerPoP(deploy, 6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPAINTER:    %.2f ms weighted benefit (%.0f%% of possible), %d UGs improved\n",
		painter.Benefit, 100*painter.FractionOfPossible(), painter.ImprovedUGs)
	fmt.Printf("One-per-PoP: %.2f ms weighted benefit (%.0f%% of possible) at the same budget\n",
		perPoP.Benefit, 100*perPoP.FractionOfPossible())
}
