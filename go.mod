module painter

go 1.22
