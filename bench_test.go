// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact; see DESIGN.md's experiment
// index), plus microbenchmarks of the load-bearing machinery and
// ablations of PAINTER's design choices.
//
// Figures run at ScaleSmall so `go test -bench=.` completes quickly;
// cmd/painter-bench reproduces them at paper scale.
package painter_test

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"painter/internal/advertise"
	"painter/internal/bgp"
	"painter/internal/core"
	"painter/internal/experiments"
	"painter/internal/tmproto"
	"painter/internal/topology"
)

var (
	envOnce  sync.Once
	benchEnv *experiments.Env
	envErr   error
)

func getEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		benchEnv, envErr = experiments.NewEnv(experiments.ScaleSmall, 7)
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	benchEnv.World.SetDay(0)
	return benchEnv
}

// --- One benchmark per paper artifact --------------------------------------

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6a(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6a(env, []float64{0.05, 0.3, 1.0}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6b(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6b(env, []float64{0.1, 1.0}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6c(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6c(env, 6, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(env, []int{4}, 10, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9a(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig9a(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9b(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig9b(env, []float64{0.3, 1.0}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	cfg := experiments.DefaultFig10Config()
	cfg.PreFail = 500 * time.Millisecond
	cfg.PostFail = 700 * time.Millisecond
	cfg.AnycastOutage = 200 * time.Millisecond
	cfg.ConvergeAfter = 400 * time.Millisecond
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.SwitchedAfter <= 0 {
			b.Fatal("no failover")
		}
		b.ReportMetric(float64(res.SwitchedAfter)/1e6, "failover-ms")
		b.ReportMetric(res.DetectionRTTs, "detect-RTTs")
	}
}

func BenchmarkFig11a(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig11a(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11b(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig11b(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig12a(env); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.RunFig12b(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	// Fig. 14 is the range rendering of the Fig. 6a sweep; benchmark the
	// range evaluation itself.
	env := getEnv(b)
	cfg := advertise.OnePerPoP(env.Deploy, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateRange(env.World, env.UGs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15a(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig15a(env, []float64{0.5, 1.0}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15b(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig15b(env, []float64{1000, 3000}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrchestratorSolve measures one full Algorithm-1 computation
// (the §4 "30 seconds per prefix at Azure scale" claim, scaled down).
func BenchmarkOrchestratorSolve(b *testing.B) {
	env := getEnv(b)
	params := core.DefaultParams(8)
	params.MaxIterations = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := core.New(env.Inputs, nil, params)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := o.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailoverDetection runs repeated failovers and reports the
// distribution the §5.2.3 text cites (detection typically ≈1.3 RTT).
func BenchmarkFailoverDetection(b *testing.B) {
	cfg := experiments.DefaultFig10Config()
	cfg.PreFail = 400 * time.Millisecond
	cfg.PostFail = 500 * time.Millisecond
	cfg.AnycastOutage = 150 * time.Millisecond
	cfg.ConvergeAfter = 300 * time.Millisecond
	var total float64
	n := 0
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.DetectionRTTs > 0 {
			total += res.DetectionRTTs
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(total/float64(n), "mean-detect-RTTs")
	}
}

// --- Ablations of design choices (DESIGN.md) --------------------------------

// BenchmarkAblationReuse compares PAINTER with and without prefix reuse
// at equal budget, reporting the benefit each attains.
func BenchmarkAblationReuse(b *testing.B) {
	env := getEnv(b)
	run := func(maxPer int) float64 {
		params := core.DefaultParams(5)
		params.MaxIterations = 1
		params.MaxPeeringsPerPrefix = maxPer
		o, err := core.New(env.Inputs, nil, params)
		if err != nil {
			b.Fatal(err)
		}
		cfg, err := o.Solve()
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Evaluate(env.World, env.UGs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.Benefit
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with := run(0)    // unlimited reuse
		without := run(1) // one peering per prefix: no reuse
		b.ReportMetric(with, "with-reuse-ms")
		b.ReportMetric(without, "no-reuse-ms")
	}
}

// BenchmarkAblationLearning compares 1 vs 4 learning iterations.
func BenchmarkAblationLearning(b *testing.B) {
	env := getEnv(b)
	run := func(iters int) float64 {
		params := core.DefaultParams(6)
		params.MaxIterations = iters
		params.MinIterBenefitGain = -1
		exec := core.NewWorldExecutor(env.World, env.UGs, 0.5, 999)
		o, err := core.New(env.Inputs, exec, params)
		if err != nil {
			b.Fatal(err)
		}
		cfg, err := o.Solve()
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Evaluate(env.World, env.UGs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.Benefit
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(1), "iter1-ms")
		b.ReportMetric(run(4), "iter4-ms")
	}
}

// BenchmarkAblationExhaustive compares lazy greedy with exact greedy.
func BenchmarkAblationExhaustive(b *testing.B) {
	env := getEnv(b)
	run := func(exact bool) float64 {
		params := core.DefaultParams(4)
		params.MaxIterations = 1
		params.ExactGreedy = exact
		o, err := core.New(env.Inputs, nil, params)
		if err != nil {
			b.Fatal(err)
		}
		cfg, err := o.Solve()
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Evaluate(env.World, env.UGs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.Benefit
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "lazy-ms")
		b.ReportMetric(run(true), "exact-ms")
	}
}

// --- Microbenchmarks of the load-bearing machinery ---------------------------

// BenchmarkPropagate measures the dense route-propagation engine on the
// full peering set; BenchmarkPropagateReference measures the retained
// map-based oracle on identical inputs. `make bench-json` records the
// pair (and their ratio) in BENCH_PROPAGATE.json.
func BenchmarkPropagate(b *testing.B) {
	env := getEnv(b)
	inj, err := env.Deploy.Injections(env.Deploy.AllPeeringIDs())
	if err != nil {
		b.Fatal(err)
	}
	tb := env.World.TieBreaker()
	env.Graph.Index() // pre-build the shared index, as in steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.Propagate(env.Graph, inj, tb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPropagateReference(b *testing.B) {
	env := getEnv(b)
	inj, err := env.Deploy.Injections(env.Deploy.AllPeeringIDs())
	if err != nil {
		b.Fatal(err)
	}
	tb := env.World.TieBreaker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.PropagateReference(env.Graph, inj, tb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyCompliant(b *testing.B) {
	env := getEnv(b)
	ugs := env.UGs.UGs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ugs[i%len(ugs)]
		if _, err := env.World.PolicyCompliant(u.ASN); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	env := getEnv(b)
	cfg := advertise.OnePerPoP(env.Deploy, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(env.World, env.UGs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBGPUpdateMarshal(b *testing.B) {
	u := bgp.Update{
		Origin:  bgp.OriginIGP,
		ASPath:  []uint16{64500, 65001, 65002},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBGPUpdateParse(b *testing.B) {
	u := bgp.Update{
		Origin:  bgp.OriginIGP,
		ASPath:  []uint16{64500, 65001, 65002},
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
	}
	raw, err := u.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.ParseUpdate(raw[19:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTMEncapsulate(b *testing.B) {
	flow := tmproto.FlowKey{
		Proto: 6,
		Src:   netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("203.0.113.1"),
		SrcPort: 40000, DstPort: 443,
	}
	payload := make([]byte, 1400)
	buf := make([]byte, 0, 1500)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := tmproto.AppendData(buf[:0], tmproto.Data{Flow: flow, Payload: payload})
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

func BenchmarkTMDecapsulate(b *testing.B) {
	flow := tmproto.FlowKey{
		Proto: 6,
		Src:   netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("203.0.113.1"),
		SrcPort: 40000, DstPort: 443,
	}
	raw, err := tmproto.AppendData(nil, tmproto.Data{Flow: flow, Payload: make([]byte, 1400)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tmproto.ParseData(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologyGenerate(b *testing.B) {
	cfg := topology.GenConfig{Seed: 1, Tier1: 8, Tier2: 60, Stubs: 800,
		MeanStubProviders: 2.4, Tier2PeerProb: 0.35, EnterpriseFrac: 0.35, ContentFrac: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topology.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComplianceValidation measures the §3.1 validation pipeline:
// harvest AS paths, infer relationships, check observed selections.
func BenchmarkComplianceValidation(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := experiments.RunComplianceValidation(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*v.ViolationRate, "violation-pct")
	}
}
